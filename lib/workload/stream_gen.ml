(* Unlike Mt_gen — which builds a Spec and needs a Scheduler run (and so
   the whole history in RAM) — this generator plays a perfectly serial
   execution itself: one pass, O(num_keys) state, each transaction
   handed to [emit] and dropped.  That is what lets `mtc gen --out-bin`
   stream multi-million-txn corpora straight to disk. *)

type params = {
  num_txns : int;
  num_keys : int;
  num_sessions : int;
  dist : Distribution.kind;
  seed : int;
}

let default =
  {
    num_txns = 100_000;
    num_keys = 10_000;
    num_sessions = 16;
    dist = Distribution.Uniform;
    seed = 42;
  }

let total_weight =
  List.fold_left (fun acc (_, w) -> acc + w) 0 Mt_gen.shape_weights

let sample_shape rng =
  let x = Rng.int rng total_weight in
  let rec pick acc = function
    | [ (s, _) ] -> s
    | (s, w) :: rest -> if x < acc + w then s else pick (acc + w) rest
    | [] -> assert false
  in
  pick 0 Mt_gen.shape_weights

let sample_two_keys dist rng =
  let x = Distribution.sample dist rng in
  let rec draw tries =
    if tries = 0 then (x, (x + 1) mod Distribution.size dist)
    else
      let y = Distribution.sample dist rng in
      if y <> x then (x, y) else draw (tries - 1)
  in
  draw 16

let generate p emit =
  if p.num_sessions <= 0 then invalid_arg "Stream_gen.generate: no sessions";
  if p.num_keys <= 0 then invalid_arg "Stream_gen.generate: no keys";
  let rng = Rng.create p.seed in
  let dist = Distribution.make p.dist ~n:p.num_keys in
  (* Serial-execution state: the current (committed) value of each key,
     plus a global fresh-value counter.  The initial transaction's
     implicit zeros are never reissued, so values are globally unique
     and every read resolves to its writer's final write — the
     histories pass SSER (hence SER and SI) by construction. *)
  let cur = Array.make p.num_keys 0 in
  let next = ref 0 in
  let fresh k =
    incr next;
    let v = !next in
    cur.(k) <- v;
    v
  in
  let read k = Op.Read (k, cur.(k)) in
  let write k = Op.Write (k, fresh k) in
  (* [write] mutates [cur], so the ops of a shape must be built in
     program order — a list literal would evaluate right-to-left and
     make reads observe their own transaction's later writes. *)
  let seq builders = List.map (fun f -> f ()) builders in
  for i = 1 to p.num_txns do
    let ops =
      match sample_shape rng with
      | Mini.R -> [ read (Distribution.sample dist rng) ]
      | Mini.RW ->
          let k = Distribution.sample dist rng in
          seq [ (fun () -> read k); (fun () -> write k) ]
      | Mini.RR ->
          let x, y = sample_two_keys dist rng in
          [ read x; read y ]
      | Mini.RRW_fst ->
          let x, y = sample_two_keys dist rng in
          seq [ (fun () -> read x); (fun () -> read y); (fun () -> write x) ]
      | Mini.RRW_snd ->
          let x, y = sample_two_keys dist rng in
          seq [ (fun () -> read x); (fun () -> read y); (fun () -> write y) ]
      | Mini.RRWW ->
          let x, y = sample_two_keys dist rng in
          seq
            [ (fun () -> read x); (fun () -> read y); (fun () -> write x);
              (fun () -> write y) ]
      | Mini.RWRW ->
          let x, y = sample_two_keys dist rng in
          seq
            [ (fun () -> read x); (fun () -> write x); (fun () -> read y);
              (fun () -> write y) ]
    in
    emit
      (Txn.make ~id:i
         ~session:(1 + ((i - 1) mod p.num_sessions))
         ~start_ts:(2 * i)
         ~commit_ts:((2 * i) + 1)
         ops)
  done
