(** A compact DSL for constructing histories in tests, examples and the
    anomaly catalogue.

    {[
      let h =
        Builder.(
          history ~keys:2 ~sessions:2
            [
              txn ~session:1 [ r 0 0; w 0 1 ];
              txn ~session:2 [ r 0 1; w 0 2 ];
            ])
    ]}

    Transaction ids are assigned in list order starting from 1 (id 0 is the
    initial transaction added by {!History.make}). *)

val r : Op.key -> Op.value -> Op.t
val w : Op.key -> Op.value -> Op.t

type spec

val txn :
  ?status:Txn.status ->
  ?start:int ->
  ?commit:int ->
  session:int ->
  Op.t list ->
  spec

val history :
  keys:int ->
  sessions:int ->
  ?rt:[ `Sequential | `Overlap ] ->
  spec list ->
  History.t
(** [rt] controls default timestamps for specs without explicit
    [start]/[commit]:
    - [`Overlap] (default): all transactions are pairwise concurrent
      (no RT edges), so SSER coincides with SER;
    - [`Sequential]: list order is the real-time order (each transaction
      finishes before the next starts). *)
