lib/db/fault.mli:
