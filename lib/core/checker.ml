type level = SSER | SER | SI

let level_name = function SSER -> "SSER" | SER -> "SER" | SI -> "SI"

let level_of_string s =
  match String.uppercase_ascii s with
  | "SSER" -> Some SSER
  | "SER" -> Some SER
  | "SI" -> Some SI
  | _ -> None

type violation =
  | Intra of Int_check.violation
  | Diverged of Divergence.instance
  | Cyclic of (Txn.id * Deps.dep * Txn.id) list
  | Malformed of string

type outcome = Pass | Fail of violation

let pp_violation ppf = function
  | Intra v -> Int_check.pp_violation ppf v
  | Diverged i -> Divergence.pp_instance ppf i
  | Cyclic cycle ->
      Format.fprintf ppf "@[<h>cycle:";
      List.iter
        (fun (a, dep, b) ->
          Format.fprintf ppf " T%d -%a-> T%d;" a Deps.pp_dep dep b)
        cycle;
      Format.fprintf ppf "@]"
  | Malformed msg -> Format.fprintf ppf "malformed history: %s" msg

let pp_outcome ppf = function
  | Pass -> Format.pp_print_string ppf "PASS"
  | Fail v -> Format.fprintf ppf "FAIL (%a)" pp_violation v

let passes = function Pass -> true | Fail _ -> false

(* The SI composition ((SO ∪ WR ∪ WW) ; RW?): an edge per dependency edge,
   plus one per dependency edge extended by a following anti-dependency.
   The middle vertex is kept in the label so cycles expand back to
   dependency-level counterexamples. *)
type si_label =
  | Dep of Deps.dep
  | Comp of Deps.dep * int * Op.key  (* dep into mid, then RW(key) out *)

let si_compose (d : Deps.t) =
  let g' = Digraph.create d.num_txn_vertices in
  List.iter
    (fun (u, lab, v) ->
      Digraph.add_edge g' u v (Dep lab);
      List.iter
        (fun (k, w) -> Digraph.add_edge g' u w (Comp (lab, v, k)))
        (Deps.rw_succ d v))
    (Deps.dep_edges d);
  g'

(* Direct CSR form of the same composition, for the [Deps.Direct] hot
   path: count the out-degree of every composed vertex (one slot per
   dependency edge plus one per RW edge leaving its target), prefix-sum,
   then fill the blocks in a second pass over the frozen dependency CSR.
   No Digraph, no intermediate edge lists. *)
let si_compose_csr ?pool (d : Deps.t) =
  let c = Deps.freeze d in
  let n = Csr.n c in
  (* Every per-vertex pass writes only its own slot (or its own cursor
     block in the fill), so the three O(V + E) passes run on vertex
     slices; only the O(V) prefix sum stays serial.  The result does not
     depend on the slicing: every write is index-addressed. *)
  let rw_deg = Array.make n 0 in
  ignore
    (Pool.map_slices pool ~n (fun lo hi ->
         for v = lo to hi - 1 do
           for e = c.Csr.offsets.(v) to c.Csr.offsets.(v + 1) - 1 do
             match c.Csr.labels.(e) with
             | Deps.RW _ -> rw_deg.(v) <- rw_deg.(v) + 1
             | _ -> ()
           done
         done));
  let offsets = Array.make (n + 1) 0 in
  ignore
    (Pool.map_slices pool ~n (fun lo hi ->
         for u = lo to hi - 1 do
           for e = c.Csr.offsets.(u) to c.Csr.offsets.(u + 1) - 1 do
             match c.Csr.labels.(e) with
             | Deps.SO | Deps.WR _ | Deps.WW _ ->
                 offsets.(u + 1) <-
                   offsets.(u + 1) + 1 + rw_deg.(c.Csr.targets.(e))
             | Deps.RT | Deps.RW _ | Deps.Rt_chain -> ()
           done
         done));
  for u = 1 to n do
    offsets.(u) <- offsets.(u) + offsets.(u - 1)
  done;
  let m' = offsets.(n) in
  let targets = Array.make m' 0 in
  let labels = if m' = 0 then [||] else Array.make m' (Dep Deps.SO) in
  ignore
    (Pool.map_slices pool ~n (fun lo hi ->
         for u = lo to hi - 1 do
           let cursor = ref offsets.(u) in
           for e = c.Csr.offsets.(u) to c.Csr.offsets.(u + 1) - 1 do
             match c.Csr.labels.(e) with
             | (Deps.SO | Deps.WR _ | Deps.WW _) as lab ->
                 let v = c.Csr.targets.(e) in
                 let i = !cursor in
                 targets.(i) <- v;
                 labels.(i) <- Dep lab;
                 cursor := i + 1;
                 for e' = c.Csr.offsets.(v) to c.Csr.offsets.(v + 1) - 1 do
                   match c.Csr.labels.(e') with
                   | Deps.RW k ->
                       let i = !cursor in
                       targets.(i) <- c.Csr.targets.(e');
                       labels.(i) <- Comp (lab, v, k);
                       cursor := i + 1
                   | _ -> ()
                 done
             | Deps.RT | Deps.RW _ | Deps.Rt_chain -> ()
           done
         done));
  Csr.make ~offsets ~targets ~labels

let expand_si_cycle cycle =
  List.concat_map
    (fun (u, lab, w) ->
      match lab with
      | Dep dep -> [ (u, dep, w) ]
      | Comp (dep, mid, k) -> [ (u, dep, mid); (mid, Deps.RW k, w) ])
    cycle

let sp_unique = Obs.Trace.intern "check/unique"
let sp_index = Obs.Trace.intern "infer/index"
let sp_intra = Obs.Trace.intern "check/intra"
let sp_divergence = Obs.Trace.intern "check/divergence"
let sp_compose = Obs.Trace.intern "check/compose"
let sp_cycle = Obs.Trace.intern "check/cycle"

(* The graph phase shared by all timestamp modes: dependency build (with
   the optional timestamp fast path), level-specific composition, cycle
   search.  Runs after the INT screen passed. *)
let graph_phase ~rt_mode ~skew ~impl ?pool ?ts level idx =
  (* With the default [Direct] builder the dependency graph is born
     frozen; the DFS then runs allocation-free over flat arrays.
     [Via_digraph] converts on first [freeze]. *)
  let acyclic_or_fail d =
    match
      Obs.Trace.with_span sp_cycle (fun () -> Cycle.find_csr (Deps.freeze d))
    with
    | None -> Pass
    | Some cycle -> Fail (Cyclic (Deps.to_txn_cycle d cycle))
  in
  match level with
  | SER -> (
      match Deps.build ~impl ?pool ?ts ~rt:Deps.No_rt idx with
      | Error e -> Fail (Malformed (Format.asprintf "%a" Deps.pp_error e))
      | Ok d -> acyclic_or_fail d)
  | SSER -> (
      match Deps.build ~skew ~impl ?pool ?ts ~rt:rt_mode idx with
      | Error e -> Fail (Malformed (Format.asprintf "%a" Deps.pp_error e))
      | Ok d -> acyclic_or_fail d)
  | SI -> (
      match
        Obs.Trace.with_span sp_divergence (fun () -> Divergence.find ?pool idx)
      with
      | Some inst -> Fail (Diverged inst)
      | None -> (
          match Deps.build ~impl ?pool ?ts ~rt:Deps.No_rt idx with
          | Error e -> Fail (Malformed (Format.asprintf "%a" Deps.pp_error e))
          | Ok d -> (
              let composed =
                Obs.Trace.with_span sp_compose (fun () ->
                    match impl with
                    | Deps.Direct -> si_compose_csr ?pool d
                    | Deps.Via_digraph -> Csr.of_digraph (si_compose d))
              in
              match
                Obs.Trace.with_span sp_cycle (fun () -> Cycle.find_csr composed)
              with
              | None -> Pass
              | Some cycle ->
                  Fail (Cyclic (Deps.to_txn_cycle d (expand_si_cycle cycle))))))

let check_report ?(rt_mode = Deps.Rt_sweep) ?(skew = 0) ?(impl = Deps.Direct)
    ?pool ?(ts = Ts.Ignore) level h =
  (* The digraph oracle is value-only; fold back to the classic
     pipeline under it so oracle comparisons stay meaningful. *)
  let ts = if impl = Deps.Via_digraph then Ts.Ignore else ts in
  match ts with
  | Ts.Ignore -> (
      match
        Obs.Trace.with_span sp_unique (fun () -> History.unique_values ?pool h)
      with
      | Error msg -> (Fail (Malformed msg), None)
      | Ok () -> (
          let idx =
            Obs.Trace.with_span sp_index (fun () -> Index.build ?pool h)
          in
          match
            Obs.Trace.with_span sp_intra (fun () -> Int_check.check ?pool idx)
          with
          | Error v -> (Fail (Intra v), None)
          | Ok () -> (graph_phase ~rt_mode ~skew ~impl ?pool level idx, None)))
  | (Ts.Trust | Ts.Verify) as mode -> (
      (* Vbox fast path: no unique-values pass, no eager writer tables —
         the timestamp chains carry the version order.  [Verify]'s chain
         build runs the duplicate-value screen itself (same first
         candidate and message as [unique_values]), and certification in
         the INT screen falls back per key to value inference, so the
         outcome — rendering included — matches [Ignore] exactly. *)
      let idx =
        Obs.Trace.with_span sp_index (fun () -> Index.build_deferred h)
      in
      match Ts.build ?pool ~mode idx with
      | Error msg -> (Fail (Malformed msg), None)
      | Ok tsi -> (
          match
            Obs.Trace.with_span sp_intra (fun () ->
                Int_check.check_ts ?pool tsi)
          with
          | Error v -> (Fail (Intra v), Some tsi)
          | Ok () ->
              ( graph_phase ~rt_mode ~skew ~impl ?pool ~ts:tsi level idx,
                Some tsi )))

let check ?rt_mode ?skew ?impl ?pool ?ts level h =
  fst (check_report ?rt_mode ?skew ?impl ?pool ?ts level h)

let check_sser ?rt_mode ?skew h = check ?rt_mode ?skew SSER h
let check_ser h = check SER h
let check_si h = check SI h

(* The initial transaction is not a mini-transaction issued by any client:
   positions count real MTs, so id 0 is skipped unless it is all there is. *)
let min_position ids =
  match List.filter (fun t -> t > 0) ids with
  | [] -> if ids = [] then None else Some 0
  | real -> Some (List.fold_left Stdlib.min Stdlib.max_int real)

let ce_position = function
  | Intra v -> Some v.Int_check.txn
  | Diverged i ->
      let r1, _ = i.Divergence.reader1 and r2, _ = i.Divergence.reader2 in
      min_position [ i.Divergence.writer; r1; r2 ]
  | Cyclic cycle ->
      min_position (List.concat_map (fun (a, _, b) -> [ a; b ]) cycle)
  | Malformed _ -> None
