(* The durability manager behind a running server: one WAL writer per
   checking shard plus the generation protocol tying WALs to snapshots.

   Directory layout: [wal-<shard>-<gen>] and [snap-<shard>-<gen>].  The
   snapshot of generation [g] captures the state at the moment
   [wal-<s>-<g>] starts, so restore = load the newest valid snapshot,
   then replay that same generation's WAL tail.  Checkpoint order for a
   shard at generation [g]:

     1. write [snap-<s>-<g+1>] (tmp + fsync + rename + dir fsync);
     2. close [wal-<s>-<g>], create [wal-<s>-<g+1>], fsync dir;
     3. unlink the generation-[g] files.

   A crash between any two steps leaves a restorable prefix: the rename
   is the commit point, and a snapshot whose WAL is missing simply has
   an empty tail.  [open_dir] itself ends with a checkpoint under the
   *current* shard count, so restarting with a different [-j] re-homes
   every session ([sid mod nshards]) and rewrites the files to match —
   the WAL a shard appends to is always its own. *)

type restored = {
  r_sid : int;
  r_meta : Snapshot_store.meta;
  r_last_seq : int;
  r_state : Snapshot_store.state;
      (* [Live] states are never poisoned: replay renders a violation to
         [Poisoned] the moment it happens *)
}

type replay_stats = {
  rs_frames : int;  (** WAL records replayed *)
  rs_ms : float;
  rs_sessions : int;  (** sessions restored *)
}

type t = {
  dir : string;
  nshards : int;
  sync : Wal.sync;
  on_fsync : int -> unit;  (* fsync duration ns, forwarded to Wal *)
  gens : int array;  (* per shard *)
  wals : Wal.writer array;
}

let wal_name ~shard ~gen = Printf.sprintf "wal-%d-%d" shard gen
let snap_name ~shard ~gen = Printf.sprintf "snap-%d-%d" shard gen

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* [(kind, shard, gen)] for every persistence file present. *)
let scan dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter_map (fun name ->
         let parse kind prefix =
           match String.split_on_char '-' name with
           | [ p; s; g ] when p = prefix -> (
               match (int_of_string_opt s, int_of_string_opt g) with
               | Some s, Some g when s >= 0 && g >= 0 -> Some (kind, s, g)
               | _ -> None)
           | _ -> None
         in
         match parse `Wal "wal" with
         | Some _ as r -> r
         | None -> parse `Snap "snap")

(* ------------------------------------------------------------------ *)
(* Restore. *)

type session = {
  mutable meta : Snapshot_store.meta;
  mutable last_seq : int;
  mutable state : Snapshot_store.state;
}

let apply_record ~render sessions count = function
  | Wal.R_open { sid; level; num_keys; skew; ts; gc } ->
      if not (Hashtbl.mem sessions sid) then begin
        let meta = { Snapshot_store.level; num_keys; skew; ts; gc } in
        let online = Online.create ~skew ~ts ~gc ~level ~num_keys () in
        Hashtbl.replace sessions sid
          { meta; last_seq = 0; state = Snapshot_store.Live online }
      end;
      incr count
  | Wal.R_feed { sid; seq; txn } -> (
      incr count;
      match Hashtbl.find_opt sessions sid with
      | None -> () (* session closed earlier in the log *)
      | Some s ->
          if seq > s.last_seq then begin
            s.last_seq <- seq;
            match s.state with
            | Snapshot_store.Poisoned _ -> ()
            | Snapshot_store.Live online -> (
                match Online.add_txn online txn with
                | Online.Ok_so_far -> ()
                | Online.Violation v ->
                    let anomaly, rendered =
                      render ~level:s.meta.Snapshot_store.level v
                    in
                    s.state <- Snapshot_store.Poisoned { anomaly; rendered }
                | exception Invalid_argument _ ->
                    (* the live server answered this with a protocol
                       close; the R_close record follows in the log *)
                    Hashtbl.remove sessions sid)
          end)
  | Wal.R_close { sid } ->
      incr count;
      Hashtbl.remove sessions sid

(* Load one legacy shard's sessions into [sessions]: newest valid
   snapshot generation, then that generation's WAL tail. *)
let restore_shard ~render dir shard gens_of_shard sessions count next_sid =
  let gens = List.sort_uniq (fun a b -> compare b a) gens_of_shard in
  let snap_base =
    List.find_map
      (fun gen ->
        let path = Filename.concat dir (snap_name ~shard ~gen) in
        if not (Sys.file_exists path) then
          (* a WAL with no same-generation snapshot is the pre-snapshot
             initial generation: empty base *)
          Some (gen, None)
        else
          match Snapshot_store.read path with
          | Ok info -> Some (gen, Some info)
          | Error _ -> None (* corrupt snapshot: fall to an older one *))
      gens
  in
  match snap_base with
  | None -> ()
  | Some (gen, info) ->
      (match info with
      | None -> ()
      | Some info ->
          if info.Snapshot_store.i_next_sid > !next_sid then
            next_sid := info.Snapshot_store.i_next_sid;
          List.iter
            (fun (e : Snapshot_store.entry) ->
              Hashtbl.replace sessions e.sid
                {
                  meta = e.meta;
                  last_seq = e.last_seq;
                  state = e.state;
                })
            info.Snapshot_store.i_entries);
      let wal_path = Filename.concat dir (wal_name ~shard ~gen) in
      if Sys.file_exists wal_path then begin
        match Wal.read_path wal_path with
        | Error _ -> ()
        | Ok (_, records, _tail) ->
            (* A torn or corrupt tail ends the replay at the last intact
               record — exactly the state the server had durably
               accepted. *)
            List.iter (apply_record ~render sessions count) records
      end

let checkpoint_files ~dir ~nshards ~sync ~on_fsync ~gen ~next_sid entries_of =
  let wals =
    Array.init nshards (fun shard ->
        Snapshot_store.write
          ~path:(Filename.concat dir (snap_name ~shard ~gen))
          ~shard ~nshards ~gen ~next_sid (entries_of shard);
        Wal.create ~on_fsync
          ~path:(Filename.concat dir (wal_name ~shard ~gen))
          ~shard ~nshards ~gen ~sync ())
  in
  fsync_dir dir;
  wals

let open_dir ?(on_fsync = fun _ -> ()) ~dir ~nshards ~sync ~render () =
  if nshards <= 0 then invalid_arg "Persist.open_dir: nshards must be > 0";
  match
    mkdir_p dir;
    let t0 = Unix.gettimeofday () in
    let files = scan dir in
    let sessions : (int, session) Hashtbl.t = Hashtbl.create 64 in
    let count = ref 0 and next_sid = ref 1 in
    let shards =
      List.sort_uniq compare (List.map (fun (_, s, _) -> s) files)
    in
    List.iter
      (fun shard ->
        let gens =
          List.filter_map
            (fun (_, s, g) -> if s = shard then Some g else None)
            files
        in
        restore_shard ~render dir shard gens sessions count next_sid)
      shards;
    Hashtbl.iter
      (fun sid _ -> if sid >= !next_sid then next_sid := sid + 1)
      sessions;
    let restored =
      Hashtbl.fold
        (fun sid s acc ->
          {
            r_sid = sid;
            r_meta = s.meta;
            r_last_seq = s.last_seq;
            r_state = s.state;
          }
          :: acc)
        sessions []
      |> List.sort (fun a b -> compare a.r_sid b.r_sid)
    in
    (* Start a fresh generation under the current shard count; every
       session re-homes to [sid mod nshards]. *)
    let gen = 1 + List.fold_left (fun m (_, _, g) -> Stdlib.max m g) 0 files in
    let entries_of shard =
      List.filter_map
        (fun r ->
          if r.r_sid mod nshards = shard then
            Some
              {
                Snapshot_store.sid = r.r_sid;
                meta = r.r_meta;
                last_seq = r.r_last_seq;
                state = r.r_state;
              }
          else None)
        restored
    in
    let wals =
      checkpoint_files ~dir ~nshards ~sync ~on_fsync ~gen
        ~next_sid:!next_sid entries_of
    in
    (* The new generation is durable; retire everything older. *)
    List.iter
      (fun (kind, s, g) ->
        let name =
          match kind with
          | `Wal -> wal_name ~shard:s ~gen:g
          | `Snap -> snap_name ~shard:s ~gen:g
        in
        try Unix.unlink (Filename.concat dir name)
        with Unix.Unix_error _ -> ())
      files;
    fsync_dir dir;
    let t =
      { dir; nshards; sync; on_fsync; gens = Array.make nshards gen; wals }
    in
    let stats =
      {
        rs_frames = !count;
        rs_ms = (Unix.gettimeofday () -. t0) *. 1000.;
        rs_sessions = List.length restored;
      }
    in
    (t, restored, !next_sid, stats)
  with
  | result -> Ok result
  | exception Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s: %s(%s): %s" dir fn arg (Unix.error_message e))
  | exception Sys_error m -> Error m

let dir t = t.dir
let append t ~shard record = Wal.append t.wals.(shard) record
let flush t ~shard = Wal.flush t.wals.(shard)
let barrier t ~shard = Wal.barrier t.wals.(shard)

(* Per-shard checkpoint, called on the shard's own domain with that
   shard's current sessions.  Only this shard's files are touched, so
   concurrent checkpoints of different shards do not interfere. *)
let checkpoint t ~shard ~next_sid entries =
  let old_gen = t.gens.(shard) in
  let gen = old_gen + 1 in
  Snapshot_store.write
    ~path:(Filename.concat t.dir (snap_name ~shard ~gen))
    ~shard ~nshards:t.nshards ~gen ~next_sid entries;
  Wal.close t.wals.(shard);
  t.wals.(shard) <-
    Wal.create ~on_fsync:t.on_fsync
      ~path:(Filename.concat t.dir (wal_name ~shard ~gen))
      ~shard ~nshards:t.nshards ~gen ~sync:t.sync ();
  fsync_dir t.dir;
  List.iter
    (fun name ->
      try Unix.unlink (Filename.concat t.dir name)
      with Unix.Unix_error _ -> ())
    [ wal_name ~shard ~gen:old_gen; snap_name ~shard ~gen:old_gen ];
  t.gens.(shard) <- gen

let close t = Array.iter Wal.close t.wals
