(* Facade: [Obs.Trace.enter], [Obs.Metrics.counter], ... *)

module Clock = Obs_clock
module Histogram = Obs_histogram
module Metrics = Obs_metrics
module Counter = Obs_metrics.Counter
module Gauge = Obs_metrics.Gauge
module Trace = Obs_trace
module Journal = Obs_journal
module Export = Obs_export
module Profile = Obs_profile
