let from (g : _ Digraph.t) src =
  let n = Digraph.n g in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v q
        end)
      (Digraph.succ_vertices g u)
  done;
  seen

let reachable g u v =
  if u = v then true
  else begin
    let n = Digraph.n g in
    let seen = Array.make n false in
    let q = Queue.create () in
    seen.(u) <- true;
    Queue.add u q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let w = Queue.pop q in
      List.iter
        (fun x ->
          if x = v then found := true
          else if not seen.(x) then begin
            seen.(x) <- true;
            Queue.add x q
          end)
        (Digraph.succ_vertices g w)
    done;
    !found
  end

let bit row v = Char.code (Bytes.get row (v lsr 3)) land (1 lsl (v land 7)) <> 0

let set_bit row v =
  let i = v lsr 3 in
  Bytes.set row i (Char.chr (Char.code (Bytes.get row i) lor (1 lsl (v land 7))))

let or_into dst src =
  let len = Bytes.length dst in
  for i = 0 to len - 1 do
    Bytes.set dst i
      (Char.chr (Char.code (Bytes.get dst i) lor Char.code (Bytes.get src i)))
  done

(* Rows computed in reverse topological order so each row is the union of
   its successors' completed rows.  Vertices inside a cycle share their
   SCC's row (every member reaches every other). *)
let closure_matrix (g : _ Digraph.t) =
  let n = Digraph.n g in
  let row_len = (n + 7) / 8 in
  let comp, k = Scc.component_ids g in
  let comp_row = Array.init k (fun _ -> Bytes.make row_len '\000') in
  (* Tarjan numbers components in reverse topological order, so component 0
     has no successors outside itself: process components in index order. *)
  let members = Array.make k [] in
  for v = n - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  for c = 0 to k - 1 do
    let row = comp_row.(c) in
    List.iter
      (fun v ->
        set_bit row v;
        List.iter
          (fun w ->
            set_bit row w;
            if comp.(w) <> c then or_into row comp_row.(comp.(w))
            (* same component: members already set below *))
          (Digraph.succ_vertices g v))
      members.(c);
    (* All members of a cyclic component reach each other. *)
    (match members.(c) with
    | _ :: _ :: _ -> List.iter (fun v -> set_bit row v) members.(c)
    | _ -> ())
  done;
  Array.init n (fun v -> comp_row.(comp.(v)))
