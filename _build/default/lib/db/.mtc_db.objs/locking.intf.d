lib/db/locking.mli: Op Txn
