(** Graphviz export of dependency graphs and counterexamples — the kind of
    visual the paper's Figures 1/12/18 show (and that the IsoVista system
    the authors integrate MTC into renders as a service). *)

val dot_of_history : ?max_txns:int -> History.t -> string
(** The dependency graph (SO solid grey, WR green, WW blue, RW red dashed)
    of the first [max_txns] committed transactions (default 60 — dot
    output for huge histories is unreadable anyway). *)

val dot_of_violation : History.t -> Checker.violation -> string
(** Only the transactions involved in the violation, with the cycle edges
    highlighted; each node is labelled with the transaction's operations
    (compact, because they are mini-transactions). *)
