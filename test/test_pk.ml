(* Property tests (QCheck) for the flat Pearce–Kelly structure: random
   edge streams cross-checked against a brute-force acyclicity oracle,
   in-place growth via [ensure], and the Online checker's equivalence
   with the batch checkers on randomized engine histories. *)

let qtest = QCheck_alcotest.to_alcotest

(* Brute-force oracle: plain edge list, DFS reachability. *)
module Oracle = struct
  type t = { n : int; mutable edges : (int * int) list }

  let create n = { n; edges = [] }
  let mem t u v = List.mem (u, v) t.edges

  let reaches t src dst =
    let visited = Array.make t.n false in
    let rec go u =
      u = dst
      || (not visited.(u)
         && (visited.(u) <- true;
             List.exists (fun (a, b) -> a = u && go b) t.edges))
    in
    go src

  (* Mirrors the documented [add_edge] contract. *)
  type verdict = Dup | Cycle | Added

  let add t u v =
    if mem t u v then Dup
    else if u = v || reaches t v u then Cycle
    else (
      t.edges <- (u, v) :: t.edges;
      Added)
end

(* An [Error path] must be a real path [v; ...; u] over accepted edges:
   the cycle witness [u -> v -> ... -> u] has to replay against the
   oracle's edge set. *)
let path_valid (o : Oracle.t) u v = function
  | [] -> false
  | p :: _ as path ->
      let rec ends = function [ x ] -> x = u | _ :: tl -> ends tl | [] -> false in
      let rec chained = function
        | a :: (b :: _ as tl) -> Oracle.mem o a b && chained tl
        | _ -> true
      in
      (if u = v then path = [ u ] else p = v) && ends path && chained path

let edges_gen ~n ~len =
  QCheck2.Gen.(
    list_size (int_range 1 len) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))))

let print_edges es =
  String.concat "; " (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) es)

(* P1: PK agrees with the oracle on accept/reject, counts distinct edges
   only, reports replayable cycle witnesses, and keeps its invariant. *)
let prop_pk_matches_oracle =
  let n = 10 in
  QCheck2.Test.make ~name:"PK == brute-force oracle (fixed capacity)"
    ~count:120 ~print:print_edges (edges_gen ~n ~len:80) (fun es ->
      let pk = Pearce_kelly.create n in
      let o = Oracle.create n in
      List.for_all
        (fun (u, v) ->
          let step_ok =
            match (Pearce_kelly.add_edge pk u v, Oracle.add o u v) with
            | Ok (), (Oracle.Added | Oracle.Dup) -> true
            | Error path, Oracle.Cycle -> path_valid o u v path
            | _ -> false
          in
          step_ok
          && Pearce_kelly.num_edges pk = List.length o.Oracle.edges
          && List.for_all
               (fun (a, b) ->
                 Pearce_kelly.order_index pk a < Pearce_kelly.order_index pk b)
               o.Oracle.edges)
        es
      && Pearce_kelly.check_invariant pk)

(* P2: growing in place with [ensure] mid-stream behaves exactly like a
   structure born at full capacity — no edge replay needed. *)
let prop_pk_ensure_growth =
  let n = 40 in
  QCheck2.Test.make ~name:"PK in-place growth == fixed capacity" ~count:120
    ~print:print_edges (edges_gen ~n ~len:100) (fun es ->
      let grown = Pearce_kelly.create 1 in
      let fixed = Pearce_kelly.create n in
      let o = Oracle.create n in
      List.for_all
        (fun (u, v) ->
          Pearce_kelly.ensure grown (1 + max u v);
          let rg = Pearce_kelly.add_edge grown u v in
          let rf = Pearce_kelly.add_edge fixed u v in
          let accepted = Oracle.add o u v <> Oracle.Cycle in
          Result.is_ok rg = accepted && Result.is_ok rf = accepted)
        es
      && Pearce_kelly.num_edges grown = Pearce_kelly.num_edges fixed
      && Pearce_kelly.check_invariant grown)

(* P3: compaction drops exactly the edges with a dropped endpoint,
   keeps the survivors' relative topological order, reports each
   surviving edge once through [on_edge] under the remap it returns,
   holds the invariant — and the compacted structure accepts/rejects a
   fresh edge stream over the survivors exactly like an oracle seeded
   with the surviving edges. *)
let prop_pk_compact =
  let n = 12 in
  let gen =
    QCheck2.Gen.(
      let* es = edges_gen ~n ~len:80 in
      let* keep = list_repeat n bool in
      let* after = edges_gen ~n ~len:30 in
      return (es, keep, after))
  in
  let print (es, keep, after) =
    Printf.sprintf "edges=[%s] keep=[%s] after=[%s]" (print_edges es)
      (String.concat ""
         (List.map (fun b -> if b then "1" else "0") keep))
      (print_edges after)
  in
  QCheck2.Test.make ~name:"PK compact == oracle over survivors" ~count:200
    ~print gen (fun (es, keep, after) ->
      let pk = Pearce_kelly.create n in
      let o = Oracle.create n in
      List.iter
        (fun (u, v) ->
          ignore (Pearce_kelly.add_edge pk u v);
          ignore (Oracle.add o u v))
        es;
      let order_before = Array.init n (Pearce_kelly.order_index pk) in
      let keep = Array.of_list keep in
      let surviving =
        List.filter (fun (u, v) -> keep.(u) && keep.(v)) o.Oracle.edges
      in
      let reported = ref [] in
      let remap =
        Pearce_kelly.compact pk ~keep ~on_edge:(fun ou ov nu nv ->
            reported := (ou, ov, nu, nv) :: !reported)
      in
      (* remap: dense prefix over kept vertices, -1 elsewhere *)
      let dense = ref true and next = ref 0 in
      Array.iteri
        (fun v nv ->
          if keep.(v) then (
            if nv <> !next then dense := false;
            incr next)
          else if nv <> -1 then dense := false)
        remap;
      !dense
      && Pearce_kelly.n pk = !next
      && Pearce_kelly.num_edges pk = List.length surviving
      && List.length !reported = List.length surviving
      && List.for_all
           (fun (ou, ov, nu, nv) ->
             keep.(ou) && keep.(ov) && remap.(ou) = nu && remap.(ov) = nv)
           !reported
      && List.for_all
           (fun (u, v) ->
             Pearce_kelly.mem_edge pk remap.(u) remap.(v)
             (* relative topological order preserved exactly *)
             && order_before.(u) < order_before.(v)
                = (Pearce_kelly.order_index pk remap.(u)
                  < Pearce_kelly.order_index pk remap.(v)))
           surviving
      && Pearce_kelly.check_invariant pk
      &&
      (* the compacted structure keeps behaving like PK: replay a fresh
         stream over the survivors against an oracle seeded with the
         surviving (renumbered) edge set *)
      let o2 = Oracle.create !next in
      o2.Oracle.edges <-
        List.map (fun (u, v) -> (remap.(u), remap.(v))) surviving;
      List.for_all
        (fun (u, v) ->
          let u = u mod Stdlib.max 1 !next and v = v mod Stdlib.max 1 !next in
          !next = 0
          ||
          match (Pearce_kelly.add_edge pk u v, Oracle.add o2 u v) with
          | Ok (), (Oracle.Added | Oracle.Dup) -> true
          | Error _, Oracle.Cycle -> true
          | _ -> false)
        after
      && Pearce_kelly.check_invariant pk)

(* P4/P5: the streaming checker and the batch checker agree on random
   engine histories, healthy and faulty, at every level. *)
let config_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* num_keys = int_range 2 20 in
    let* num_txns = int_range 20 200 in
    let* num_sessions = int_range 1 8 in
    let* level = oneofl [ Checker.SI; Checker.SER; Checker.SSER ] in
    let* fault =
      oneofl
        [ Fault.No_fault; Fault.Lost_update 0.15; Fault.Aborted_read 0.15;
          Fault.Causality_violation 0.1 ]
    in
    return (seed, num_keys, num_txns, num_sessions, level, fault))

let print_config (seed, num_keys, num_txns, num_sessions, level, fault) =
  Printf.sprintf "seed=%d keys=%d txns=%d sessions=%d level=%s fault=%s" seed
    num_keys num_txns num_sessions (Checker.level_name level)
    (Fault.name fault)

(* Commit-order stream, as a monitoring proxy would deliver it. *)
let stream_of (h : History.t) =
  Array.to_list h.History.txns
  |> List.filter (fun (t : Txn.t) -> t.Txn.id <> History.init_id)
  |> List.sort (fun (a : Txn.t) b -> compare a.Txn.commit_ts b.Txn.commit_ts)

let prop_online_equals_batch =
  QCheck2.Test.make ~name:"Online.check_stream == batch Checker.check"
    ~count:60 ~print:print_config
    config_gen (fun (seed, num_keys, num_txns, num_sessions, level, fault) ->
      let spec =
        Mt_gen.generate
          { Mt_gen.num_sessions; num_txns; num_keys;
            dist = Distribution.Uniform; seed }
      in
      let db = { Db.level = Isolation.Serializable; fault; num_keys; seed } in
      let h =
        (Scheduler.run ~params:{ Scheduler.default_params with seed } ~db
           ~spec ())
          .Scheduler.history
      in
      let batch = Checker.passes (Checker.check level h) in
      let online =
        Result.is_ok (Online.check_stream ~level ~num_keys (stream_of h))
      in
      batch = online)

let suite =
  [
    qtest prop_pk_matches_oracle;
    qtest prop_pk_ensure_growth;
    qtest prop_pk_compact;
    qtest prop_online_equals_batch;
  ]
