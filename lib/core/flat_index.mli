(** Allocation-light lookup tables for dependency inference.

    An open-addressing hash map from native [int] keys to non-negative
    [int] values: flat parallel arrays, linear probing, load factor kept
    at or below 1/2.  Lookups and inserts allocate nothing (inserts
    amortize array doubling), where the seed's tuple-keyed [Hashtbl]
    boxed a [(key * value)] block per insert and hashed it per probe.

    The {!Writers} submodule layers the paper's writer-resolution tables
    (final / intermediate / aborted, Section IV-A) on top, packing each
    [(key, value)] pair into a single int — sound because mini-transaction
    histories assign unique values, so the packing is injective whenever
    it cannot overflow, and the rare unpackable pair falls back to a
    tuple-keyed spill table. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is a size hint (rounded up to a power of two, min 16). *)

val length : t -> int

val set : t -> int -> int -> unit
(** [set t k v] binds [k] to [v], replacing any previous binding.
    @raise Invalid_argument if [v < 0] (reserved for "absent"). *)

val get : t -> int -> int
(** [get t k] is the value bound to [k], or [-1] if unbound. *)

val mem : t -> int -> bool

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] applies [f key value] to every live binding, in slot
    order (an implementation order — callers must not depend on it
    beyond determinism for a fixed insertion history). *)

val words : t -> int
(** Rough size of the backing store in words, O(1). *)

val filtered : t -> (int -> bool) -> t
(** [filtered t pred] is a fresh map holding exactly the bindings whose
    key [pred] accepts, sized for the survivors. *)

val encode : Buffer.t -> t -> unit
(** Snapshot serialization: the live pairs.  Probe layout is not
    preserved (it is unobservable through this interface). *)

val decode : Binio_core.reader -> t
(** Inverse of {!encode}.
    @raise Binio_core.Decode_error on truncated or malformed input. *)

val pack_pair : num_keys:int -> int -> int -> int
(** [pack_pair ~num_keys k v] is the shared injective packing
    [v * num_keys + k] of a [(key, value)] pair into one int, or [-1]
    when the pair has no collision-free packing ([k] outside
    [0, num_keys), [v] negative, or overflow) — callers fall back to a
    tuple-keyed spill for those. *)

(** Final / intermediate / aborted writer resolution over packed pairs —
    the backing store of {!Index} and the streaming {!Online} checker. *)
module Writers : sig
  type who =
    | Final of Txn.id
    | Intermediate of Txn.id
    | Aborted of Txn.id
    | Nobody

  type t

  val create : num_keys:int -> expected:int -> t
  (** [num_keys] bounds the key space (packing stride); [expected] is a
      hint for the number of final writes. *)

  val set_final : t -> Op.key -> Op.value -> Txn.id -> unit
  val set_intermediate : t -> Op.key -> Op.value -> Txn.id -> unit
  val set_aborted : t -> Op.key -> Op.value -> Txn.id -> unit

  val resolve : t -> Op.key -> Op.value -> who
  (** Who produced value [v] of object [k]?  Checks final writers first,
      then intermediate, then aborted — the resolution order of paper
      Section IV-A. *)

  val keep : t -> (int -> bool) -> t
  (** [keep t pred] rebuilds all three tiers retaining only the packed
      pairs [pred] accepts; the spill table (unpackable pairs) is kept
      verbatim — it is never pruned. *)

  val iter_final : t -> (Txn.id -> unit) -> unit
  (** Iterate the ids of every final-writer binding (packed + spill). *)

  val words : t -> int

  val encode : Buffer.t -> t -> unit
  val decode : Binio_core.reader -> t
end

(** [(key, value)] pair -> int list, the reader/overwriter tiers of the
    streaming {!Online} checker: lists are cons chains threaded through
    two flat int vectors (no boxed cells, no tuple keys), a push is O(1)
    and iteration is newest-first — the seed's cons order. *)
module Multi : sig
  type t

  val create : num_keys:int -> unit -> t

  val push : t -> Op.key -> Op.value -> int -> unit
  (** [push t k v x] prepends [x] to the list of [(k, v)]. *)

  val iter : t -> Op.key -> Op.value -> (int -> unit) -> unit
  (** Iterate the list of [(k, v)], newest push first. *)

  val keep : t -> (int -> bool) -> t
  (** [keep t pred] rebuilds the table retaining only the chains whose
      packed pair [pred] accepts, preserving each survivor's newest-first
      iteration order; spill lists are kept verbatim. *)

  val iter_members : t -> (int -> unit) -> unit
  (** Iterate every element of every chain (pool + spill), in pool
      order. *)

  val words : t -> int

  val encode : Buffer.t -> t -> unit
  (** The cons pool is written verbatim, so a decoded table iterates in
      the identical (newest-first) order. *)

  val decode : Binio_core.reader -> t
end

(** [(key, value)] pair -> [(int, int)], the extender table of the SI
    divergence screen.  The first component doubles as the absence
    sentinel and must be [>= 0]; the second is unrestricted. *)
module Pairs : sig
  type t

  val create : num_keys:int -> unit -> t

  val set : t -> Op.key -> Op.value -> int -> int -> unit
  (** Bind [(k, v)] to the pair, replacing any previous binding.
      @raise Invalid_argument if the first component is negative. *)

  val first : t -> Op.key -> Op.value -> int
  (** First component of the binding, or [-1] if unbound. *)

  val second : t -> Op.key -> Op.value -> int
  (** Second component; meaningful only when {!first} returned [>= 0]. *)

  val keep : t -> (int -> bool) -> t
  (** [keep t pred] rebuilds the table retaining only the packed pairs
      [pred] accepts; spill entries are kept verbatim. *)

  val words : t -> int

  val encode : Buffer.t -> t -> unit
  val decode : Binio_core.reader -> t
end
