lib/history/codec.mli: History
