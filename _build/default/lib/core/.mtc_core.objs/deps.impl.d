lib/core/deps.ml: Array Digraph Format Hashtbl History Index List Op Txn
