test/test_sat.ml: Acyclicity Alcotest List Lit Result Rng Solver
