lib/graph/topo.ml: Array Digraph List Queue
