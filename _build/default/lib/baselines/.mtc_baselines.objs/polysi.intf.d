lib/baselines/polysi.mli: History
