type verdict = V_pass | V_fail of string

type measurement = {
  spec_name : string;
  gen_s : float;
  verify_s : float;
  verify_alloc_bytes : float;
  committed : int;
  attempts : int;
  abort_rate : float;
  verdict : verdict;
}

let pp_measurement ppf m =
  Format.fprintf ppf
    "%s: gen=%.3fs verify=%.4fs alloc=%.1fMB committed=%d attempts=%d \
     abort-rate=%.1f%% %s"
    m.spec_name m.gen_s m.verify_s
    (m.verify_alloc_bytes /. 1_048_576.0)
    m.committed m.attempts (100.0 *. m.abort_rate)
    (match m.verdict with V_pass -> "PASS" | V_fail r -> "FAIL: " ^ r)

let measure ?sched ~db ~spec ~verify () =
  let result, gen_s =
    Stats.time_it (fun () -> Scheduler.run ?params:sched ~db ~spec ())
  in
  let alloc0 = Gc.allocated_bytes () in
  let verdict, verify_s = Stats.time_it (fun () -> verify result) in
  let verify_alloc_bytes = Gc.allocated_bytes () -. alloc0 in
  {
    spec_name = spec.Spec.name;
    gen_s;
    verify_s;
    verify_alloc_bytes;
    committed = result.Scheduler.committed;
    attempts = result.Scheduler.attempts;
    abort_rate = Scheduler.abort_rate result;
    verdict;
  }

let mtc_verify level (r : Scheduler.result) =
  match Checker.check level r.Scheduler.history with
  | Checker.Pass -> V_pass
  | Checker.Fail v ->
      V_fail (Report.render r.Scheduler.history level v)

type hunt_outcome = {
  violation : string option;
  anomaly : string option;
  ce_position : int option;
  trials : int;
  committed_total : int;
  hunt_gen_s : float;
  hunt_verify_s : float;
}

(* Each trial builds its own [Db]/[Scheduler] from a per-trial seed, so
   trial k is independent of every other trial: generation + checking can
   fan out across a domain pool.  Trials are processed in batches of
   [jobs]; within a batch results are scanned in trial order and only the
   trials a sequential hunt would have run (1 .. first failing) are
   accounted, so [trials], [committed_total], the verdict and
   [ce_position] are identical to a [jobs = 1] hunt. *)
let hunt ?(sched_seed = 7) ?(jobs = 1) ~db ~make_spec ~level ~max_trials () =
  let run_trial trial =
    let spec = make_spec ~seed:trial in
    let db = { db with Db.seed = db.Db.seed + trial } in
    let sched = { Scheduler.default_params with seed = sched_seed + trial } in
    let result, g =
      Stats.time_it (fun () -> Scheduler.run ~params:sched ~db ~spec ())
    in
    let outcome, v =
      Stats.time_it (fun () -> Checker.check level result.Scheduler.history)
    in
    (result, outcome, g, v)
  in
  let gen_s = ref 0.0 and verify_s = ref 0.0 in
  let committed_total = ref 0 in
  let account (result, _, g, v) =
    gen_s := !gen_s +. g;
    verify_s := !verify_s +. v;
    committed_total := !committed_total + result.Scheduler.committed
  in
  let found trial result viol =
    {
      violation = Some (Report.render result.Scheduler.history level viol);
      anomaly = Option.map Anomaly.name (Report.classify viol);
      ce_position = Checker.ce_position viol;
      trials = trial;
      committed_total = !committed_total;
      hunt_gen_s = !gen_s;
      hunt_verify_s = !verify_s;
    }
  in
  let clean () =
    {
      violation = None;
      anomaly = None;
      ce_position = None;
      trials = max_trials;
      committed_total = !committed_total;
      hunt_gen_s = !gen_s;
      hunt_verify_s = !verify_s;
    }
  in
  if jobs <= 1 then
    let rec go trial =
      if trial > max_trials then clean ()
      else
        let ((result, outcome, _, _) as r) = run_trial trial in
        account r;
        match outcome with
        | Checker.Pass -> go (trial + 1)
        | Checker.Fail viol -> found trial result viol
    in
    go 1
  else
    Pool.with_pool ~size:jobs (fun pool ->
        let rec batch lo =
          if lo > max_trials then clean ()
          else
            let hi = Stdlib.min (lo + jobs - 1) max_trials in
            let trials = Array.init (hi - lo + 1) (fun i -> lo + i) in
            let results = Pool.map pool run_trial trials in
            let rec scan i =
              if i >= Array.length results then batch (hi + 1)
              else begin
                let ((result, outcome, _, _) as r) = results.(i) in
                account r;
                match outcome with
                | Checker.Pass -> scan (i + 1)
                | Checker.Fail viol -> found trials.(i) result viol
              end
            in
            scan 0
        in
        batch 1)
