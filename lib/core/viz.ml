let edge_style = function
  | Deps.SO -> "color=gray50, style=solid, label=\"SO\""
  | Deps.RT -> "color=gray80, style=dotted, label=\"RT\""
  | Deps.WR k -> Printf.sprintf "color=darkgreen, label=\"WR(x%d)\"" k
  | Deps.WW k -> Printf.sprintf "color=blue, label=\"WW(x%d)\"" k
  | Deps.RW k -> Printf.sprintf "color=red, style=dashed, label=\"RW(x%d)\"" k
  | Deps.Rt_chain -> "color=gray90, style=dotted"

let txn_label (t : Txn.t) =
  if t.Txn.id = History.init_id then "T0 (init)"
  else
    let ops =
      Array.to_list t.Txn.ops
      |> List.map Op.to_string
      |> String.concat "\\n"
    in
    Printf.sprintf "T%d\\n%s" t.Txn.id ops

let dot_of_history ?(max_txns = 60) (h : History.t) =
  let idx = Index.build h in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph history {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  let shown = Stdlib.min max_txns (Index.num_vertices idx) in
  for v = 0 to shown - 1 do
    let t = Index.txn_of_vertex idx v in
    Buffer.add_string buf
      (Printf.sprintf "  t%d [label=\"%s\"];\n" t.Txn.id (txn_label t))
  done;
  (match Deps.build ~rt:Deps.No_rt idx with
  | Error _ -> ()
  | Ok d ->
      let c = Deps.freeze d in
      for u = 0 to Csr.n c - 1 do
        Csr.iter_succ c u (fun v lab ->
            if u < shown && v < shown then
              let a = (Index.txn_of_vertex idx u).Txn.id in
              let b = (Index.txn_of_vertex idx v).Txn.id in
              Buffer.add_string buf
                (Printf.sprintf "  t%d -> t%d [%s];\n" a b (edge_style lab)))
      done);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let dot_of_violation (h : History.t) (v : Checker.violation) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph violation {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  let node id =
    Buffer.add_string buf
      (Printf.sprintf "  t%d [label=\"%s\"];\n" id
         (txn_label (History.txn h id)))
  in
  (match v with
  | Checker.Cyclic cycle ->
      let ids =
        List.concat_map (fun (a, _, b) -> [ a; b ]) cycle
        |> List.sort_uniq compare
      in
      List.iter node ids;
      List.iter
        (fun (a, lab, b) ->
          Buffer.add_string buf
            (Printf.sprintf "  t%d -> t%d [%s, penwidth=2];\n" a b
               (edge_style lab)))
        cycle
  | Checker.Diverged i ->
      let r1, v1 = i.Divergence.reader1 and r2, v2 = i.Divergence.reader2 in
      List.iter node (List.sort_uniq compare [ i.Divergence.writer; r1; r2 ]);
      Buffer.add_string buf
        (Printf.sprintf
           "  t%d -> t%d [color=blue, label=\"WW(x%d):=%d\", penwidth=2];\n"
           i.Divergence.writer r1 i.Divergence.key v1);
      Buffer.add_string buf
        (Printf.sprintf
           "  t%d -> t%d [color=blue, label=\"WW(x%d):=%d\", penwidth=2];\n"
           i.Divergence.writer r2 i.Divergence.key v2)
  | Checker.Intra { txn; _ } -> node txn
  | Checker.Malformed msg ->
      Buffer.add_string buf
        (Printf.sprintf "  m [shape=plaintext, label=\"%s\"];\n"
           (String.map (fun c -> if c = '"' then '\'' else c) msg)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
