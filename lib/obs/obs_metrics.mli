(** Typed metric instruments and named registries.

    A {!registry} maps metric names to instruments; the service exposes
    the {!default} registry over HTTP in Prometheus text format (see
    {!Obs_export.prometheus}).  Registration is idempotent — asking for
    an existing name returns the existing instrument, so call sites can
    register at module-init without coordination.

    Names must match the Prometheus grammar
    [[a-zA-Z_:][a-zA-Z0-9_:]*]; anything else raises
    [Invalid_argument]. *)

(** Monotonically increasing counter, striped across 8 atomics so
    always-on increments from shard domains don't fight over one cache
    line. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit

  val get : t -> int
  (** Sum over stripes.  Not a snapshot isolated from concurrent
      increments, but never under-reads completed ones. *)
end

(** Last-value gauge. *)
module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> int -> unit
  val get : t -> int

  val max_update : t -> int -> unit
  (** Raise the gauge to [v] if [v] is larger (CAS loop) — for
      high-water marks. *)
end

type registry

val create : unit -> registry

val default : registry
(** Process-wide registry scraped by [mtc serve --metrics-port]. *)

val counter : registry -> ?help:string -> string -> Counter.t
(** Find-or-create.  Raises [Invalid_argument] if the name is already
    bound to a different instrument kind or is not a valid metric
    name. *)

val gauge : registry -> ?help:string -> string -> Gauge.t
val histogram : registry -> ?help:string -> string -> Obs_histogram.t

(** What {!iter} hands to the exporter. *)
type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Obs_histogram.t

val iter : registry -> (name:string -> help:string -> instrument -> unit) -> unit
(** In registration order. *)

val valid_name : string -> bool
