(* Tests for mtc.history: Op, Txn, History, Mini, Builder, Codec. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let kv = Alcotest.(list (pair int int))

(* --- Op --- *)

let test_op_accessors () =
  checki "key" 3 (Op.key (Op.Read (3, 7)));
  checki "value" 7 (Op.value (Op.Write (3, 7)));
  checkb "is_read" true (Op.is_read (Op.Read (0, 0)));
  checkb "is_write" true (Op.is_write (Op.Write (0, 0)))

let test_op_string_roundtrip () =
  List.iter
    (fun op ->
      match Op.of_string (Op.to_string op) with
      | Some op' -> checkb "roundtrip" true (Op.equal op op')
      | None -> Alcotest.fail "parse failed")
    [ Op.Read (0, 0); Op.Write (12, -3); Op.Read (5, 1_000_000) ]

let test_op_parse_garbage () =
  checkb "garbage" true (Op.of_string "hello" = None);
  checkb "partial" true (Op.of_string "R(x" = None)

(* --- Txn --- *)

let rw_txn =
  Txn.make ~id:1 ~session:1
    [ Op.Read (0, 5); Op.Write (0, 6); Op.Read (1, 7); Op.Write (1, 8) ]

let test_txn_external_reads () =
  Alcotest.check kv "both reads external" [ (0, 5); (1, 7) ]
    (Txn.external_reads rw_txn)

let test_txn_read_after_write_not_external () =
  let t = Txn.make ~id:1 ~session:1 [ Op.Write (0, 1); Op.Read (0, 1) ] in
  Alcotest.check kv "no external reads" [] (Txn.external_reads t)

let test_txn_first_read_wins () =
  let t = Txn.make ~id:1 ~session:1 [ Op.Read (0, 1); Op.Read (0, 2) ] in
  Alcotest.check kv "first read" [ (0, 1) ] (Txn.external_reads t)

let test_txn_final_writes () =
  let t =
    Txn.make ~id:1 ~session:1
      [ Op.Write (0, 1); Op.Write (0, 2); Op.Write (1, 3) ]
  in
  Alcotest.check kv "last write per key" [ (0, 2); (1, 3) ] (Txn.final_writes t)

let test_txn_intermediate_writes () =
  let t =
    Txn.make ~id:1 ~session:1
      [ Op.Write (0, 1); Op.Write (0, 2); Op.Write (1, 3) ]
  in
  Alcotest.check kv "overwritten" [ (0, 1) ] (Txn.intermediate_writes t)

let test_txn_predicates () =
  checkb "reads 0" true (Txn.reads_key rw_txn 0);
  checkb "writes 1" true (Txn.writes_key rw_txn 1);
  checkb "no key 9" false (Txn.reads_key rw_txn 9);
  Alcotest.check Alcotest.(option int) "read_of" (Some 7) (Txn.read_of rw_txn 1);
  Alcotest.check Alcotest.(option int) "write_of" (Some 6) (Txn.write_of rw_txn 0)

let test_txn_keys_order () =
  Alcotest.check (Alcotest.list Alcotest.int) "first occurrence order" [ 0; 1 ]
    (Txn.keys rw_txn)

let test_txn_default_timestamps () =
  let t = Txn.make ~id:9 ~session:1 [] in
  checki "start defaults to id" 9 t.Txn.start_ts;
  checki "commit defaults to start" 9 t.Txn.commit_ts

(* --- Mini --- *)

let mk ops = Txn.make ~id:1 ~session:1 ops

let test_mini_accepts_shapes () =
  List.iter
    (fun (name, ops) -> checkb name true (Mini.is_mini (mk ops)))
    [
      ("r", [ Op.Read (0, 1) ]);
      ("rw", [ Op.Read (0, 1); Op.Write (0, 2) ]);
      ("rr", [ Op.Read (0, 1); Op.Read (1, 2) ]);
      ("rrw", [ Op.Read (0, 1); Op.Read (1, 2); Op.Write (0, 3) ]);
      ( "rrww",
        [ Op.Read (0, 1); Op.Read (1, 2); Op.Write (0, 3); Op.Write (1, 4) ] );
      ( "rwrw",
        [ Op.Read (0, 1); Op.Write (0, 2); Op.Read (1, 3); Op.Write (1, 4) ] );
      (* double write to one read key is still a mini-transaction *)
      ("rww", [ Op.Read (0, 1); Op.Write (0, 2); Op.Write (0, 3) ]);
    ]

let test_mini_rejects () =
  List.iter
    (fun (name, ops) -> checkb name false (Mini.is_mini (mk ops)))
    [
      ("empty", []);
      ("blind write", [ Op.Write (0, 1) ]);
      ("write then read wrong key", [ Op.Read (1, 0); Op.Write (0, 1) ]);
      ("three reads", [ Op.Read (0, 0); Op.Read (1, 0); Op.Read (2, 0) ]);
      ( "three writes",
        [
          Op.Read (0, 0);
          Op.Write (0, 1);
          Op.Write (0, 2);
          Op.Write (0, 3);
        ] );
    ]

let test_mini_shape_of () =
  let shape ops = Mini.shape_of (mk ops) in
  checkb "rw" true (shape [ Op.Read (0, 1); Op.Write (0, 2) ] = Some Mini.RW);
  checkb "rrww" true
    (shape [ Op.Read (0, 1); Op.Read (1, 2); Op.Write (0, 3); Op.Write (1, 4) ]
    = Some Mini.RRWW);
  checkb "rwrw" true
    (shape [ Op.Read (0, 1); Op.Write (0, 2); Op.Read (1, 3); Op.Write (1, 4) ]
    = Some Mini.RWRW);
  checkb "non-template" true
    (shape [ Op.Read (0, 1); Op.Write (0, 2); Op.Write (0, 3) ] = None)

let test_mini_shape_keys () =
  List.iter
    (fun s ->
      let k = Mini.num_keys_of_shape s in
      checkb (Mini.shape_name s) true (k = 1 || k = 2))
    Mini.all_shapes

(* --- History --- *)

let test_history_init_txn () =
  let h = Builder.(history ~keys:3 ~sessions:1 [ txn ~session:1 [ r 0 0 ] ]) in
  let init = History.txn h History.init_id in
  checki "init writes all keys" 3 (Array.length init.Txn.ops);
  checkb "init committed" true (Txn.is_committed init)

let test_history_counts () =
  let h =
    Builder.(
      history ~keys:2 ~sessions:2
        [
          txn ~session:1 [ r 0 0 ];
          txn ~session:2 ~status:Txn.Aborted [ r 1 0 ];
        ])
  in
  checki "num_txns includes init" 3 (History.num_txns h);
  checki "committed includes init" 2 (History.committed_count h)

let test_history_session_chain () =
  let h =
    Builder.(
      history ~keys:1 ~sessions:2
        [
          txn ~session:1 [ r 0 0 ];
          txn ~session:2 [ r 0 0 ];
          txn ~session:1 ~status:Txn.Aborted [ r 0 0 ];
          txn ~session:1 [ r 0 0 ];
        ])
  in
  Alcotest.check (Alcotest.list Alcotest.int) "committed chain skips aborted"
    [ 1; 4 ] (History.session_chain h 1)

let test_history_so_pairs () =
  let h =
    Builder.(
      history ~keys:1 ~sessions:2
        [ txn ~session:1 [ r 0 0 ]; txn ~session:1 [ r 0 0 ]; txn ~session:2 [ r 0 0 ] ])
  in
  let so = History.so_pairs h in
  checkb "init->1" true (List.mem (0, 1) so);
  checkb "1->2" true (List.mem (1, 2) so);
  checkb "init->3" true (List.mem (0, 3) so);
  checkb "no 2->3" false (List.mem (2, 3) so)

let test_history_rt () =
  let h =
    Builder.(
      history ~keys:1 ~sessions:1
        [
          txn ~session:1 ~start:10 ~commit:20 [ r 0 0 ];
          txn ~session:1 ~start:25 ~commit:30 [ r 0 0 ];
          txn ~session:1 ~start:15 ~commit:40 [ r 0 0 ];
        ])
  in
  checkb "1 before 2" true (History.rt_before h 1 2);
  checkb "1 not before 3" false (History.rt_before h 1 3);
  checkb "2 not before 1" false (History.rt_before h 2 1)

let test_history_unique_values_ok () =
  let h =
    Builder.(
      history ~keys:1 ~sessions:2
        [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 1; w 0 2 ] ])
  in
  checkb "unique ok" true (History.unique_values h = Ok ())

let test_history_unique_values_dup () =
  let h =
    Builder.(
      history ~keys:1 ~sessions:2
        [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 0; w 0 1 ] ])
  in
  checkb "duplicate detected" true (Result.is_error (History.unique_values h))

let test_history_dup_across_aborted () =
  (* Uniqueness also covers aborted transactions' writes. *)
  let h =
    Builder.(
      history ~keys:1 ~sessions:2
        [
          txn ~session:1 ~status:Txn.Aborted [ r 0 0; w 0 1 ];
          txn ~session:2 [ r 0 0; w 0 1 ];
        ])
  in
  checkb "dup with aborted detected" true
    (Result.is_error (History.unique_values h))

let test_history_all_mini () =
  let good =
    Builder.(history ~keys:1 ~sessions:1 [ txn ~session:1 [ r 0 0; w 0 1 ] ])
  in
  checkb "mini ok" true (History.all_mini good = Ok ());
  let bad =
    Builder.(history ~keys:1 ~sessions:1 [ txn ~session:1 [ w 0 1 ] ])
  in
  checkb "blind write rejected" true (Result.is_error (History.all_mini bad))

let test_history_make_bad_session () =
  Alcotest.check_raises "session out of range"
    (Invalid_argument "History.make: T1 has session 5 out of [1,2]") (fun () ->
      ignore
        (History.make ~num_keys:1 ~num_sessions:2
           [ Txn.make ~id:1 ~session:5 [ Op.Read (0, 0) ] ]))

let test_history_make_bad_key () =
  checkb "key out of range" true
    (try
       ignore
         (History.make ~num_keys:1 ~num_sessions:1
            [ Txn.make ~id:1 ~session:1 [ Op.Read (5, 0) ] ]);
       false
     with Invalid_argument _ -> true)

let test_history_make_bad_id () =
  checkb "wrong id" true
    (try
       ignore
         (History.make ~num_keys:1 ~num_sessions:1
            [ Txn.make ~id:7 ~session:1 [ Op.Read (0, 0) ] ]);
       false
     with Invalid_argument _ -> true)

(* --- Builder --- *)

let test_builder_overlap_default () =
  let h =
    Builder.(
      history ~keys:1 ~sessions:2
        [ txn ~session:1 [ r 0 0 ]; txn ~session:2 [ r 0 0 ] ])
  in
  checkb "no RT between overlap txns" false (History.rt_before h 1 2);
  checkb "nor reverse" false (History.rt_before h 2 1)

let test_builder_sequential () =
  let h =
    Builder.(
      history ~keys:1 ~sessions:2 ~rt:`Sequential
        [ txn ~session:1 [ r 0 0 ]; txn ~session:2 [ r 0 0 ] ])
  in
  checkb "list order is RT" true (History.rt_before h 1 2)

(* --- Codec --- *)

let sample_history =
  Builder.(
    history ~keys:2 ~sessions:2
      [
        txn ~session:1 ~start:3 ~commit:9 [ r 0 0; w 0 1 ];
        txn ~session:2 ~status:Txn.Aborted ~start:4 ~commit:5 [ r 1 0 ];
      ])

let test_codec_roundtrip () =
  match Codec.of_string (Codec.to_string sample_history) with
  | Ok h' ->
      checks "same serialization" (Codec.to_string sample_history)
        (Codec.to_string h');
      checki "keys" sample_history.History.num_keys h'.History.num_keys;
      checki "txns" (History.num_txns sample_history) (History.num_txns h')
  | Error e -> Alcotest.fail e

let test_codec_bad_magic () =
  checkb "bad magic" true (Result.is_error (Codec.of_string "nonsense"))

let test_codec_bad_txn_line () =
  let s = "mtc-history v1\nkeys 1\nsessions 1\ntxn x y z\n" in
  checkb "bad line" true (Result.is_error (Codec.of_string s))

(* Malformed inputs must yield [Error] naming the offending 1-based
   line of the original input — comments and blank lines count. *)
let test_codec_error_lines () =
  let expect input sub =
    match Codec.of_string input with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" input)
    | Error e ->
        let contains sub s =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        checkb (Printf.sprintf "%S in error %S" sub e) true (contains sub e)
  in
  expect "" "empty input";
  expect "nonsense\n" "line 1";
  expect "mtc-history v1\nkeys 1\n" "truncated header";
  expect "mtc-history v1\nkeys one\nsessions 1\n" "line 2";
  expect "mtc-history v1\nkeys 1\nsessions 1\ntxn x y z\n" "line 4";
  expect "mtc-history v1\nkeys 1\nsessions 1\ntxn 1 1 X 1 1 R(x0)=0\n"
    "bad status";
  expect "mtc-history v1\nkeys 1\nsessions 1\ntxn 1 1 C 1 1 R(x0\n"
    "bad operation";
  (* comments shift the physical line of the bad txn to 6 *)
  expect "mtc-history v1\n# a comment\nkeys 1\n\nsessions 1\ntxn 1 1 C 1 1 Q\n"
    "line 6";
  expect
    "mtc-history v1\nkeys 1\nsessions 1\ntxn 1 1 C 1 1 R(x0)=0\ntxn 1 1 C 2 2 W(x0):=1\n"
    "duplicate txn id 1";
  expect
    "mtc-history v1\nkeys 1\nsessions 1\ntxn 2 1 C 1 1 R(x0)=0\n"
    "out of order";
  expect "mtc-history v1\nkeys 1\nsessions 1\ntxn 1 5 C 1 1 R(x0)=0\n"
    "session 5 out of";
  expect "mtc-history v1\nkeys 1\nsessions 1\ntxn 1 1 C 1 1 R(x7)=0\n"
    "key 7 out of"

let qtest = QCheck_alcotest.to_alcotest

(* Mangling a valid serialization never makes the parser raise. *)
let prop_codec_total =
  let base = Codec.to_string sample_history in
  QCheck2.Test.make ~name:"codec parsing never raises" ~count:500
    ~print:(fun (cut, flips) ->
      Printf.sprintf "cut=%d flips=%d" cut (List.length flips))
    QCheck2.Gen.(
      let* cut = int_range 0 (String.length base) in
      let* flips =
        list_size (int_range 0 4)
          (pair (int_range 0 (String.length base - 1)) (int_range 0 255))
      in
      return (cut, flips))
    (fun (cut, flips) ->
      let b = Bytes.of_string (String.sub base 0 cut) in
      List.iter
        (fun (pos, v) ->
          if pos < Bytes.length b then Bytes.set b pos (Char.chr v))
        flips;
      match Codec.of_string (Bytes.to_string b) with
      | Ok _ | Error _ -> true)

(* Text round-trip on engine-produced histories, not just the sample. *)
let prop_codec_roundtrip_engine =
  QCheck2.Test.make ~name:"codec round-trip on engine histories" ~count:15
    ~print:string_of_int (QCheck2.Gen.int_range 1 10_000)
    (fun seed ->
      let spec =
        Mt_gen.generate
          { Mt_gen.default with num_txns = 60; num_keys = 6; seed }
      in
      let db =
        { Db.level = Isolation.Snapshot; fault = Fault.No_fault;
          num_keys = 6; seed }
      in
      let h =
        (Scheduler.run
           ~params:{ Scheduler.default_params with seed }
           ~db ~spec ())
          .Scheduler.history
      in
      match Codec.of_string (Codec.to_string h) with
      | Ok h' -> Codec.to_string h' = Codec.to_string h
      | Error _ -> false)

let test_codec_file_roundtrip () =
  let path = Filename.temp_file "mtc_test" ".hist" in
  Codec.save path sample_history;
  (match Codec.load path with
  | Ok h' ->
      checks "file roundtrip" (Codec.to_string sample_history)
        (Codec.to_string h')
  | Error e -> Alcotest.fail e);
  Sys.remove path

let suite =
  [
    ("op accessors", `Quick, test_op_accessors);
    ("op string roundtrip", `Quick, test_op_string_roundtrip);
    ("op parse garbage", `Quick, test_op_parse_garbage);
    ("txn external reads", `Quick, test_txn_external_reads);
    ("txn read-after-write not external", `Quick, test_txn_read_after_write_not_external);
    ("txn first read wins", `Quick, test_txn_first_read_wins);
    ("txn final writes", `Quick, test_txn_final_writes);
    ("txn intermediate writes", `Quick, test_txn_intermediate_writes);
    ("txn predicates", `Quick, test_txn_predicates);
    ("txn keys order", `Quick, test_txn_keys_order);
    ("txn default timestamps", `Quick, test_txn_default_timestamps);
    ("mini accepts the seven shapes", `Quick, test_mini_accepts_shapes);
    ("mini rejects non-MTs", `Quick, test_mini_rejects);
    ("mini shape_of", `Quick, test_mini_shape_of);
    ("mini shapes have 1-2 keys", `Quick, test_mini_shape_keys);
    ("history init transaction", `Quick, test_history_init_txn);
    ("history counts", `Quick, test_history_counts);
    ("history session chain skips aborted", `Quick, test_history_session_chain);
    ("history so_pairs", `Quick, test_history_so_pairs);
    ("history real-time order", `Quick, test_history_rt);
    ("history unique values ok", `Quick, test_history_unique_values_ok);
    ("history duplicate values", `Quick, test_history_unique_values_dup);
    ("history duplicate across aborted", `Quick, test_history_dup_across_aborted);
    ("history all_mini", `Quick, test_history_all_mini);
    ("history rejects bad session", `Quick, test_history_make_bad_session);
    ("history rejects bad key", `Quick, test_history_make_bad_key);
    ("history rejects bad id", `Quick, test_history_make_bad_id);
    ("codec errors carry line numbers", `Quick, test_codec_error_lines);
    qtest prop_codec_total;
    qtest prop_codec_roundtrip_engine;
    ("builder overlap default", `Quick, test_builder_overlap_default);
    ("builder sequential rt", `Quick, test_builder_sequential);
    ("codec roundtrip", `Quick, test_codec_roundtrip);
    ("codec bad magic", `Quick, test_codec_bad_magic);
    ("codec bad txn line", `Quick, test_codec_bad_txn_line);
    ("codec file roundtrip", `Quick, test_codec_file_roundtrip);
  ]
