lib/core/checker.ml: Cycle Deps Digraph Divergence Format History Index Int_check List Op Stdlib String Txn
