lib/core/anomaly.ml: Builder Checker List Txn
