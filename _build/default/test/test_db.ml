(* Tests for mtc.db: Mvcc, Locking, and the Db engine semantics. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Mvcc --- *)

let test_mvcc_initial () =
  let s = Mvcc.create ~num_keys:2 in
  let v = Mvcc.visible_at s ~key:0 ~replica:0 ~ts:100 in
  checki "initial value" 0 v.Mvcc.value;
  checki "initial writer" 0 v.Mvcc.writer

let test_mvcc_snapshot_visibility () =
  let s = Mvcc.create ~num_keys:1 in
  Mvcc.install s ~key:0 ~value:7 ~writer:1 ~commit_ts:10 ~lag:None;
  checki "before" 0 (Mvcc.visible_at s ~key:0 ~replica:0 ~ts:9).Mvcc.value;
  checki "after" 7 (Mvcc.visible_at s ~key:0 ~replica:0 ~ts:10).Mvcc.value

let test_mvcc_replica_lag () =
  let s = Mvcc.create ~num_keys:1 in
  Mvcc.install s ~key:0 ~value:7 ~writer:1 ~commit_ts:10 ~lag:(Some (1, 50));
  checki "replica 0 sees it" 7 (Mvcc.visible_at s ~key:0 ~replica:0 ~ts:20).Mvcc.value;
  checki "replica 1 lags" 0 (Mvcc.visible_at s ~key:0 ~replica:1 ~ts:20).Mvcc.value;
  checki "replica 1 catches up" 7
    (Mvcc.visible_at s ~key:0 ~replica:1 ~ts:50).Mvcc.value

let test_mvcc_newer_than () =
  let s = Mvcc.create ~num_keys:1 in
  checkb "initially no" false (Mvcc.newer_than s ~key:0 ~ts:0);
  Mvcc.install s ~key:0 ~value:1 ~writer:1 ~commit_ts:5 ~lag:None;
  checkb "newer exists" true (Mvcc.newer_than s ~key:0 ~ts:4);
  checkb "not newer" false (Mvcc.newer_than s ~key:0 ~ts:5)

let test_mvcc_predecessor () =
  let s = Mvcc.create ~num_keys:1 in
  Mvcc.install s ~key:0 ~value:1 ~writer:1 ~commit_ts:5 ~lag:None;
  let latest = Mvcc.visible_at s ~key:0 ~replica:0 ~ts:10 in
  match Mvcc.predecessor s ~key:0 latest with
  | Some p -> checki "initial version" 0 p.Mvcc.value
  | None -> Alcotest.fail "predecessor missing"

let test_mvcc_writers_after () =
  let s = Mvcc.create ~num_keys:1 in
  Mvcc.install s ~key:0 ~value:1 ~writer:1 ~commit_ts:5 ~lag:None;
  Mvcc.install s ~key:0 ~value:2 ~writer:2 ~commit_ts:8 ~lag:None;
  Alcotest.check
    (Alcotest.list Alcotest.int)
    "both writers" [ 1; 2 ]
    (List.sort compare (Mvcc.newest_writer_after s ~key:0 ~ts:4));
  checki "one writer" 1
    (List.length (Mvcc.newest_writer_after s ~key:0 ~ts:6))

(* --- Locking --- *)

let test_lock_shared_shared () =
  let l = Locking.create ~num_keys:1 in
  checkb "s1" true (Locking.acquire l ~kind:`Shared ~key:0 ~txn:1 ~age:1 = Locking.Granted);
  checkb "s2 compatible" true
    (Locking.acquire l ~kind:`Shared ~key:0 ~txn:2 ~age:2 = Locking.Granted)

let test_lock_exclusive_blocks_younger () =
  let l = Locking.create ~num_keys:1 in
  ignore (Locking.acquire l ~kind:`Exclusive ~key:0 ~txn:1 ~age:1);
  checkb "younger blocked" true
    (Locking.acquire l ~kind:`Shared ~key:0 ~txn:2 ~age:2 = Locking.Blocked)

let test_lock_wound_wait () =
  let l = Locking.create ~num_keys:1 in
  ignore (Locking.acquire l ~kind:`Exclusive ~key:0 ~txn:2 ~age:5);
  match Locking.acquire l ~kind:`Exclusive ~key:0 ~txn:1 ~age:1 with
  | Locking.Granted_wounding [ 2 ] ->
      checkb "victim's locks gone" true (Locking.held l ~txn:2 = [])
  | _ -> Alcotest.fail "older requester should wound"

let test_lock_upgrade () =
  let l = Locking.create ~num_keys:1 in
  ignore (Locking.acquire l ~kind:`Shared ~key:0 ~txn:1 ~age:1);
  checkb "self upgrade" true
    (Locking.acquire l ~kind:`Exclusive ~key:0 ~txn:1 ~age:1 = Locking.Granted)

let test_lock_release_all () =
  let l = Locking.create ~num_keys:2 in
  ignore (Locking.acquire l ~kind:`Exclusive ~key:0 ~txn:1 ~age:1);
  ignore (Locking.acquire l ~kind:`Shared ~key:1 ~txn:1 ~age:1);
  checki "held two" 2 (List.length (Locking.held l ~txn:1));
  Locking.release_all l ~txn:1;
  checkb "free for others" true
    (Locking.acquire l ~kind:`Exclusive ~key:0 ~txn:2 ~age:9 = Locking.Granted)

let test_lock_wound_multiple_readers () =
  let l = Locking.create ~num_keys:1 in
  ignore (Locking.acquire l ~kind:`Shared ~key:0 ~txn:2 ~age:5);
  ignore (Locking.acquire l ~kind:`Shared ~key:0 ~txn:3 ~age:6);
  match Locking.acquire l ~kind:`Exclusive ~key:0 ~txn:1 ~age:1 with
  | Locking.Granted_wounding victims ->
      Alcotest.check (Alcotest.list Alcotest.int) "both wounded" [ 2; 3 ]
        (List.sort compare victims)
  | _ -> Alcotest.fail "expected wounding"

let test_lock_mixed_ages_blocks () =
  (* One conflicting holder older, one younger: must block (cannot wound
     the older one). *)
  let l = Locking.create ~num_keys:1 in
  ignore (Locking.acquire l ~kind:`Shared ~key:0 ~txn:1 ~age:1);
  ignore (Locking.acquire l ~kind:`Shared ~key:0 ~txn:3 ~age:9);
  checkb "blocked" true
    (Locking.acquire l ~kind:`Exclusive ~key:0 ~txn:2 ~age:5 = Locking.Blocked)

(* --- Db engine semantics --- *)

let si_db ?(fault = Fault.No_fault) () =
  Db.create { Db.level = Isolation.Snapshot; fault; num_keys = 4; seed = 1 }

let read_value db h k =
  match Db.read db h k with
  | Db.Rvalue v -> v
  | _ -> Alcotest.fail "read failed"

let test_db_snapshot_reads () =
  let db = si_db () in
  let t1 = Db.begin_txn db ~session:1 in
  ignore (Db.write db t1 0 100);
  (match Db.commit db t1 with
  | Db.Committed _ -> ()
  | Db.Rejected _ -> Alcotest.fail "commit failed");
  let t2 = Db.begin_txn db ~session:2 in
  checki "sees committed" 100 (read_value db t2 0)

let test_db_snapshot_ignores_later_commits () =
  let db = si_db () in
  let t2 = Db.begin_txn db ~session:2 in
  let t1 = Db.begin_txn db ~session:1 in
  ignore (Db.write db t1 0 100);
  ignore (Db.commit db t1);
  (* t2's snapshot predates t1's commit. *)
  checki "snapshot isolation" 0 (read_value db t2 0)

let test_db_read_own_writes () =
  let db = si_db () in
  let t = Db.begin_txn db ~session:1 in
  ignore (Db.write db t 0 42);
  checki "own write visible" 42 (read_value db t 0)

let test_db_first_committer_wins () =
  let db = si_db () in
  let t1 = Db.begin_txn db ~session:1 in
  let t2 = Db.begin_txn db ~session:2 in
  ignore (Db.read db t1 0);
  ignore (Db.read db t2 0);
  ignore (Db.write db t1 0 101);
  ignore (Db.write db t2 0 102);
  (match Db.commit db t1 with
  | Db.Committed _ -> ()
  | Db.Rejected _ -> Alcotest.fail "first commit must win");
  match Db.commit db t2 with
  | Db.Rejected Db.Ww_conflict -> ()
  | _ -> Alcotest.fail "second committer must lose"

let test_db_lost_update_fault_disables_fcw () =
  let db = si_db ~fault:(Fault.Lost_update 1.0) () in
  let t1 = Db.begin_txn db ~session:1 in
  let t2 = Db.begin_txn db ~session:2 in
  ignore (Db.read db t1 0);
  ignore (Db.read db t2 0);
  ignore (Db.write db t1 0 101);
  ignore (Db.write db t2 0 102);
  ignore (Db.commit db t1);
  match Db.commit db t2 with
  | Db.Committed _ -> ()
  | Db.Rejected _ -> Alcotest.fail "fault should allow the lost update"

let test_db_ssi_blocks_write_skew () =
  let db =
    Db.create
      { Db.level = Isolation.Serializable; fault = Fault.No_fault; num_keys = 4; seed = 1 }
  in
  let t1 = Db.begin_txn db ~session:1 in
  let t2 = Db.begin_txn db ~session:2 in
  ignore (Db.read db t1 0);
  ignore (Db.read db t1 1);
  ignore (Db.read db t2 0);
  ignore (Db.read db t2 1);
  ignore (Db.write db t1 0 101);
  ignore (Db.write db t2 1 202);
  let r1 = Db.commit db t1 in
  let r2 = Db.commit db t2 in
  let committed r = match r with Db.Committed _ -> true | _ -> false in
  checkb "at most one commits" false (committed r1 && committed r2)

let test_db_aborted_read_fault_leaks () =
  let db = si_db ~fault:(Fault.Aborted_read 1.0) () in
  let t1 = Db.begin_txn db ~session:1 in
  ignore (Db.read db t1 0);
  ignore (Db.write db t1 0 777);
  Db.abort db t1;
  let t2 = Db.begin_txn db ~session:2 in
  checki "leaked write visible" 777 (read_value db t2 0)

let test_db_sser_blocks_conflicting_write () =
  let db =
    Db.create
      { Db.level = Isolation.Strict_serializable; fault = Fault.No_fault;
        num_keys = 4; seed = 1 }
  in
  let t1 = Db.begin_txn db ~session:1 in
  ignore (Db.read db t1 0);
  let t2 = Db.begin_txn db ~session:2 in
  (* Younger writer conflicts with older reader: must wait. *)
  match Db.write db t2 0 5 with
  | Db.Wblocked -> ()
  | _ -> Alcotest.fail "younger writer should block"

let test_db_sser_wound () =
  let db =
    Db.create
      { Db.level = Isolation.Strict_serializable; fault = Fault.No_fault;
        num_keys = 4; seed = 1 }
  in
  let t1 = Db.begin_txn db ~session:1 in
  let t2 = Db.begin_txn db ~session:2 in
  (* Younger t2 takes the lock first, older t1 wounds it. *)
  (match Db.write db t2 0 5 with
  | Db.Wok -> ()
  | _ -> Alcotest.fail "free lock");
  (match Db.write db t1 0 6 with
  | Db.Wok -> ()
  | _ -> Alcotest.fail "older must wound and proceed");
  match Db.read db t2 1 with
  | Db.Rdoomed -> Db.abort db t2
  | _ -> Alcotest.fail "victim must observe its doom"

let test_db_stats_counting () =
  let db = si_db () in
  let t1 = Db.begin_txn db ~session:1 in
  ignore (Db.read db t1 0);
  ignore (Db.write db t1 0 1);
  ignore (Db.commit db t1);
  let t2 = Db.begin_txn db ~session:2 in
  Db.abort db t2;
  let s = Db.stats db in
  checki "commits" 1 s.Db.commits;
  checki "user aborts" 1 s.Db.aborts_user;
  checki "total aborts" 1 (Db.total_aborts s)

let test_db_clock_monotone () =
  let db = si_db () in
  let c0 = Db.now db in
  let t = Db.begin_txn db ~session:1 in
  ignore (Db.read db t 0);
  checkb "clock advances" true (Db.now db > c0)

let test_db_read_committed_allows_lost_update () =
  let db =
    Db.create
      { Db.level = Isolation.Read_committed; fault = Fault.No_fault;
        num_keys = 4; seed = 1 }
  in
  let t1 = Db.begin_txn db ~session:1 in
  let t2 = Db.begin_txn db ~session:2 in
  ignore (Db.read db t1 0);
  ignore (Db.read db t2 0);
  ignore (Db.write db t1 0 101);
  ignore (Db.write db t2 0 102);
  let ok r = match r with Db.Committed _ -> true | _ -> false in
  checkb "both commit under RC" true (ok (Db.commit db t1) && ok (Db.commit db t2))

let suite =
  [
    ("mvcc: initial version", `Quick, test_mvcc_initial);
    ("mvcc: snapshot visibility", `Quick, test_mvcc_snapshot_visibility);
    ("mvcc: replica lag", `Quick, test_mvcc_replica_lag);
    ("mvcc: newer_than", `Quick, test_mvcc_newer_than);
    ("mvcc: predecessor", `Quick, test_mvcc_predecessor);
    ("mvcc: writers after ts", `Quick, test_mvcc_writers_after);
    ("lock: shared/shared compatible", `Quick, test_lock_shared_shared);
    ("lock: exclusive blocks younger", `Quick, test_lock_exclusive_blocks_younger);
    ("lock: wound-wait", `Quick, test_lock_wound_wait);
    ("lock: self upgrade", `Quick, test_lock_upgrade);
    ("lock: release_all", `Quick, test_lock_release_all);
    ("lock: wound multiple readers", `Quick, test_lock_wound_multiple_readers);
    ("lock: mixed ages block", `Quick, test_lock_mixed_ages_blocks);
    ("db: committed writes visible", `Quick, test_db_snapshot_reads);
    ("db: snapshot ignores later commits", `Quick, test_db_snapshot_ignores_later_commits);
    ("db: read own writes", `Quick, test_db_read_own_writes);
    ("db: first committer wins", `Quick, test_db_first_committer_wins);
    ("db: lost-update fault disables FCW", `Quick, test_db_lost_update_fault_disables_fcw);
    ("db: SSI blocks write skew", `Quick, test_db_ssi_blocks_write_skew);
    ("db: aborted-read fault leaks writes", `Quick, test_db_aborted_read_fault_leaks);
    ("db: 2PL blocks conflicting writes", `Quick, test_db_sser_blocks_conflicting_write);
    ("db: 2PL wound-wait dooms victim", `Quick, test_db_sser_wound);
    ("db: stats counting", `Quick, test_db_stats_counting);
    ("db: clock monotone", `Quick, test_db_clock_monotone);
    ("db: read committed allows lost update", `Quick, test_db_read_committed_allows_lost_update);
  ]
