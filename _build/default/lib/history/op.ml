type key = int
type value = int

type t = Read of key * value | Write of key * value

let key = function Read (k, _) | Write (k, _) -> k
let value = function Read (_, v) | Write (_, v) -> v
let is_read = function Read _ -> true | Write _ -> false
let is_write = function Write _ -> true | Read _ -> false

let pp ppf = function
  | Read (k, v) -> Format.fprintf ppf "R(x%d)=%d" k v
  | Write (k, v) -> Format.fprintf ppf "W(x%d):=%d" k v

let to_string op = Format.asprintf "%a" pp op

let of_string s =
  try Scanf.sscanf s "R(x%d)=%d" (fun k v -> Some (Read (k, v)))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> (
    try Scanf.sscanf s "W(x%d):=%d" (fun k v -> Some (Write (k, v)))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)

let equal a b = a = b
let compare = Stdlib.compare
