let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* ------------------------------------------------------------------ *)
(* Interned span names: the hot path carries ints, the drain path maps
   them back.  Interning happens at module init of the instrumented
   code, so the mutex here is uncontended in steady state. *)

let names_mu = Mutex.create ()
let names_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let names : string array ref = ref (Array.make 64 "")
let names_len = ref 0

let intern s =
  Mutex.lock names_mu;
  let id =
    match Hashtbl.find_opt names_tbl s with
    | Some id -> id
    | None ->
        let id = !names_len in
        if id = Array.length !names then begin
          let bigger = Array.make (2 * id) "" in
          Array.blit !names 0 bigger 0 id;
          names := bigger
        end;
        !names.(id) <- s;
        incr names_len;
        Hashtbl.replace names_tbl s id;
        id
  in
  Mutex.unlock names_mu;
  id

let name_of id =
  Mutex.lock names_mu;
  let s = if id >= 0 && id < !names_len then !names.(id) else "?" in
  Mutex.unlock names_mu;
  s

(* ------------------------------------------------------------------ *)
(* Per-domain rings.  Three parallel int arrays (not a record array) so
   recording a span writes unboxed ints and allocates nothing.  A slot
   is reserved with fetch_and_add because systhreads share their
   carrier domain's ring; the ring wraps, overwriting oldest spans. *)

let cap_bits = 15
let cap = 1 lsl cap_bits
let mask = cap - 1

type ring = {
  r_dom : int;
  r_idx : int Atomic.t;  (* total reservations since last clear *)
  r_name : int array;
  r_t0 : int array;
  r_dur : int array;
}

let rings_mu = Mutex.create ()
let rings : ring list ref = ref []

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          r_dom = (Domain.self () :> int);
          r_idx = Atomic.make 0;
          r_name = Array.make cap 0;
          r_t0 = Array.make cap 0;
          r_dur = Array.make cap 0;
        }
      in
      Mutex.lock rings_mu;
      rings := r :: !rings;
      Mutex.unlock rings_mu;
      r)

let record name t0 dur =
  let r = Domain.DLS.get ring_key in
  let i = Atomic.fetch_and_add r.r_idx 1 land mask in
  Array.unsafe_set r.r_name i name;
  Array.unsafe_set r.r_t0 i t0;
  Array.unsafe_set r.r_dur i dur

(* ------------------------------------------------------------------ *)

let disabled_t0 = min_int

let enter () = if Atomic.get on then Obs_clock.now_ns () else disabled_t0

let exit name t0 =
  if t0 <> disabled_t0 && Atomic.get on then
    record name t0 (Obs_clock.now_ns () - t0)

let with_span name f =
  let t0 = enter () in
  match f () with
  | v ->
      exit name t0;
      v
  | exception e ->
      exit name t0;
      raise e

let instant name = if Atomic.get on then record name (Obs_clock.now_ns ()) 0

(* ------------------------------------------------------------------ *)

let clear () =
  Mutex.lock rings_mu;
  List.iter (fun r -> Atomic.set r.r_idx 0) !rings;
  Mutex.unlock rings_mu

type event = { ev_name : string; ev_t0 : int; ev_dur : int; ev_dom : int }

let events () =
  Mutex.lock rings_mu;
  let rs = !rings in
  Mutex.unlock rings_mu;
  let acc = ref [] in
  List.iter
    (fun r ->
      let total = Atomic.get r.r_idx in
      let n = Stdlib.min total cap in
      for k = total - n to total - 1 do
        let i = k land mask in
        acc :=
          {
            ev_name = name_of r.r_name.(i);
            ev_t0 = r.r_t0.(i);
            ev_dur = r.r_dur.(i);
            ev_dom = r.r_dom;
          }
          :: !acc
      done)
    rs;
  List.sort (fun a b -> compare a.ev_t0 b.ev_t0) !acc

let dropped () =
  Mutex.lock rings_mu;
  let rs = !rings in
  Mutex.unlock rings_mu;
  List.fold_left
    (fun acc r -> acc + Stdlib.max 0 (Atomic.get r.r_idx - cap))
    0 rs
