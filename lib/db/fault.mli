(** Fault-injection modes replicating the production isolation bugs that
    MTC rediscovers (paper Table II / Figures 12 and 18).  Each mode
    corrupts exactly the engine rule whose violation produced the real
    bug, with a configurable trigger probability.

    | mode | replicates | corrupted rule |
    |---|---|---|
    | [Lost_update p]       | MariaDB Galera 10.7.3 [41]  | first-committer-wins skipped |
    | [Aborted_read p]      | MongoDB 4.2.6 [42]          | aborted writes leak to readers |
    | [Causality_violation p] | Dgraph 1.1.1 [43]         | reads may use a stale version |
    | [Write_skew p]        | PostgreSQL 12.3 [44]        | SSI dangerous-structure check skipped |
    | [Long_fork p]         | PostgreSQL 11.8 [8]         | commit visibility lags on one replica |

    The [Ts_*] modes model a {e lying timestamp oracle}: the engine
    behaves correctly, but the commit timestamp it {e reports} to the
    client is wrong — skewed by a few ticks ([Ts_skew]), collapsed onto
    the start timestamp ([Ts_reorder]), or a duplicate of the previous
    report ([Ts_dup]).  Values are untainted, so trusting the
    timestamps yields wrong version orders that only verify-mode
    certification (or full MTC inference) can expose. *)

type mode =
  | No_fault
  | Lost_update of float
  | Aborted_read of float
  | Causality_violation of float
  | Write_skew of float
  | Long_fork of float
  | Ts_skew of float
  | Ts_reorder of float
  | Ts_dup of float

val name : mode -> string
val probability : mode -> float
val of_string : ?p:float -> string -> mode option

val all_named : (string * (float -> mode)) list
(** Constructors by name, for the CLI. *)
