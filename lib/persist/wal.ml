(* Per-shard write-ahead log of accepted service frames.

   File layout (all multi-byte integers little-endian u32 unless they
   are Binio varints):

     magic "mtcwal1\n" (8 bytes)
     u32 header length | header payload | u32 CRC-32(header payload)
     record*

   where the header payload is [version=1, shard, nshards, gen] as
   uvarints and every record is

     u32 payload length | payload | u32 CRC-32(payload)

   with the payload a tagged Binio encoding (1 = open, 2 = feed,
   3 = close).  Appends are group-committed: records accumulate in a
   user-space buffer and reach the kernel in one [write] per drain
   barrier (the owning shard's ingress queue going empty), per ack
   barrier (session-open and verdict acks), per size threshold, or on
   close — a thousand-feed burst is one syscall, not a thousand.  After the flush the bytes live in the
   page cache, so a [kill -9] of the server loses at most the buffered
   tail since the last barrier; [fsync] (the [sync] policy) adds
   protection against OS crashes and power loss.  [Always] mode keeps
   the historical record-per-write+fsync discipline.

   A torn tail (crash mid-append) parses as a clean [Truncated] stop; a
   CRC or tag mismatch before the tail is [Corrupt].  Neither escapes as
   an exception.

   v2: [R_open] carries the session's watermark-GC policy, so WAL-only
   replay recreates the checker with the same bounded-memory setting
   (and replays within the same bound). *)

let magic = "mtcwal1\n"
let version = 2

(* Records can embed a whole wire transaction; mirror the wire frame
   ceiling so a corrupt length prefix cannot make restore allocate
   gigabytes. *)
let max_record = 1 lsl 24

type sync = Always | Batch | Off

let sync_of_string = function
  | "always" -> Some Always
  | "batch" -> Some Batch
  | "off" -> Some Off
  | _ -> None

let sync_name = function Always -> "always" | Batch -> "batch" | Off -> "off"

(* In [Batch] mode, fsync every this many appends even without an
   explicit barrier, bounding the window an OS crash can lose.  Only an
   OS crash: a plain server kill loses nothing (the bytes are already
   written), and verdict acks are guarded by the {!barrier} fsync — so
   this ceiling trades a modest loss window for keeping streaming
   throughput close to the WAL-off line. *)
let batch_every = 2048

type record =
  | R_open of {
      sid : int;
      level : Checker.level;
      num_keys : int;
      skew : int;
      ts : Ts.mode;
      gc : Online.gc;
    }
  | R_feed of { sid : int; seq : int; txn : Txn.t }
  | R_close of { sid : int }

type header = { h_version : int; h_shard : int; h_nshards : int; h_gen : int }

let add_u32le buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let level_byte = function Checker.SSER -> 0 | Checker.SER -> 1 | Checker.SI -> 2

let level_of_byte = function
  | 0 -> Checker.SSER
  | 1 -> Checker.SER
  | 2 -> Checker.SI
  | b -> Binio.fail "unknown level byte %d" b

let ts_byte = function Ts.Ignore -> 0 | Ts.Trust -> 1 | Ts.Verify -> 2

let ts_of_byte = function
  | 0 -> Ts.Ignore
  | 1 -> Ts.Trust
  | 2 -> Ts.Verify
  | b -> Binio.fail "unknown ts mode byte %d" b

let add_gc buf = function
  | Online.Gc_off -> Buffer.add_char buf '\000'
  | Online.Gc_auto -> Buffer.add_char buf '\001'
  | Online.Gc_words n ->
      Buffer.add_char buf '\002';
      Binio.add_uvarint buf n

let read_gc r =
  match Binio.read_byte r with
  | 0 -> Online.Gc_off
  | 1 -> Online.Gc_auto
  | 2 ->
      let n = Binio.read_uvarint r in
      if n <= 0 then Binio.fail "gc word ceiling %d must be positive" n
      else Online.Gc_words n
  | b -> Binio.fail "unknown gc policy byte %d" b

let add_record buf = function
  | R_open { sid; level; num_keys; skew; ts; gc } ->
      Buffer.add_char buf '\001';
      Binio.add_uvarint buf sid;
      Buffer.add_char buf (Char.chr (level_byte level));
      Binio.add_uvarint buf num_keys;
      Binio.add_varint buf skew;
      Buffer.add_char buf (Char.chr (ts_byte ts));
      add_gc buf gc
  | R_feed { sid; seq; txn } ->
      Buffer.add_char buf '\002';
      Binio.add_uvarint buf sid;
      Binio.add_uvarint buf seq;
      Binio.add_txn buf txn
  | R_close { sid } ->
      Buffer.add_char buf '\003';
      Binio.add_uvarint buf sid

let read_record r =
  match Binio.read_byte r with
  | 1 ->
      let sid = Binio.read_uvarint r in
      let level = level_of_byte (Binio.read_byte r) in
      let num_keys = Binio.read_uvarint r in
      let skew = Binio.read_varint r in
      let ts = ts_of_byte (Binio.read_byte r) in
      let gc = read_gc r in
      R_open { sid; level; num_keys; skew; ts; gc }
  | 2 ->
      let sid = Binio.read_uvarint r in
      let seq = Binio.read_uvarint r in
      R_feed { sid; seq; txn = Binio.read_txn r }
  | 3 -> R_close { sid = Binio.read_uvarint r }
  | t -> Binio.fail "unknown WAL record tag %d" t

(* ------------------------------------------------------------------ *)
(* Writing. *)

(* Cap on how many encoded bytes group commit may hold back from the
   kernel: a burst larger than this still lands in a handful of writes,
   and a [kill -9] can lose at most this much un-barriered tail. *)
let flush_threshold = 1 lsl 18

type writer = {
  fd : Unix.file_descr;
  scratch : Buffer.t;  (* record payload *)
  pending : Buffer.t;
      (* group commit: encoded len+payload+crc blocks accumulate here
         and reach the kernel in one [write] per {!flush} *)
  sync : sync;
  on_fsync : int -> unit;  (* called with the fsync's duration in ns *)
  mutable unsynced : int;
  mutable bytes : int;
  mutable closed : bool;
}

let rec really_write fd b off len =
  if len > 0 then
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    really_write fd b (off + n) (len - n)

let write_buffer w buf =
  let b = Buffer.to_bytes buf in
  really_write w.fd b 0 (Bytes.length b);
  w.bytes <- w.bytes + Bytes.length b

(* One write(2) for everything queued since the last flush. *)
let flush w =
  if (not w.closed) && Buffer.length w.pending > 0 then begin
    write_buffer w w.pending;
    Buffer.clear w.pending
  end

let fsync w =
  flush w;
  let t0 = Obs.Clock.now_ns () in
  Unix.fsync w.fd;
  w.unsynced <- 0;
  w.on_fsync (Obs.Clock.now_ns () - t0)

let create ?(on_fsync = fun _ -> ()) ~path ~shard ~nshards ~gen ~sync () =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let w =
    {
      fd;
      scratch = Buffer.create 256;
      pending = Buffer.create 4096;
      sync;
      on_fsync;
      unsynced = 0;
      bytes = 0;
      closed = false;
    }
  in
  Buffer.clear w.scratch;
  Binio.add_uvarint w.scratch version;
  Binio.add_uvarint w.scratch shard;
  Binio.add_uvarint w.scratch nshards;
  Binio.add_uvarint w.scratch gen;
  let payload = Buffer.contents w.scratch in
  Buffer.add_string w.pending magic;
  add_u32le w.pending (String.length payload);
  Buffer.add_string w.pending payload;
  add_u32le w.pending (Crc32.string payload);
  (* the header always lands immediately: a WAL file without one is
     unreadable, not merely short *)
  flush w;
  if sync <> Off then fsync w;
  w

let append w record =
  if w.closed then invalid_arg "Wal.append: writer closed";
  Buffer.clear w.scratch;
  add_record w.scratch record;
  let payload = Buffer.contents w.scratch in
  let before = Buffer.length w.pending in
  add_u32le w.pending (String.length payload);
  Buffer.add_string w.pending payload;
  add_u32le w.pending (Crc32.string payload);
  let added = Buffer.length w.pending - before in
  (match w.sync with
  | Always -> fsync w
  | Batch ->
      w.unsynced <- w.unsynced + 1;
      if w.unsynced >= batch_every then fsync w
      else if Buffer.length w.pending >= flush_threshold then flush w
  | Off -> if Buffer.length w.pending >= flush_threshold then flush w);
  added

(* The ack barrier: make everything appended so far durable before a
   verdict is acknowledged (a plain group-commit flush in [Off] mode,
   already durable in [Always] mode). *)
let barrier w =
  if not w.closed then
    if w.sync = Batch && w.unsynced > 0 then fsync w else flush w

let bytes_written w = w.bytes + Buffer.length w.pending

let close w =
  if not w.closed then begin
    if w.sync <> Off && w.unsynced > 0 then fsync w else flush w;
    w.closed <- true;
    Unix.close w.fd
  end

(* ------------------------------------------------------------------ *)
(* Reading. *)

type tail =
  | Complete
  | Truncated of int  (** torn tail starting at this byte offset *)
  | Corrupt of { offset : int; reason : string }

let read_u32le src pos =
  Char.code (Binio.Source.get src pos)
  lor (Char.code (Binio.Source.get src (pos + 1)) lsl 8)
  lor (Char.code (Binio.Source.get src (pos + 2)) lsl 16)
  lor (Char.code (Binio.Source.get src (pos + 3)) lsl 24)

(* Parse one length+payload+crc block at [pos].  [`Short] = torn tail. *)
let read_block src pos =
  let total = Binio.Source.length src in
  if total - pos < 4 then `Short
  else
    let len = read_u32le src pos in
    if len <= 0 || len > max_record then
      `Bad (Printf.sprintf "block length %d out of range" len)
    else if total - pos < 4 + len + 4 then `Short
    else
      let payload = Binio.Source.sub_string src (pos + 4) len in
      let crc = read_u32le src (pos + 4 + len) in
      if Crc32.string payload <> crc then `Bad "CRC mismatch"
      else `Block (payload, pos + 4 + len + 4)

let read_path path =
  match Binio.Source.map_file path with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | src -> (
      let total = Binio.Source.length src in
      if total < String.length magic
         || Binio.Source.sub_string src 0 (String.length magic) <> magic
      then Error (Printf.sprintf "%s: not a WAL file" path)
      else
        match read_block src (String.length magic) with
        | `Short | `Bad _ -> Error (Printf.sprintf "%s: bad WAL header" path)
        | `Block (hpayload, pos0) -> (
            match
              let r = Binio.reader hpayload in
              let h_version = Binio.read_uvarint r in
              if h_version <> version then
                Binio.fail "WAL version %d (want %d)" h_version version;
              let h_shard = Binio.read_uvarint r in
              let h_nshards = Binio.read_uvarint r in
              let h_gen = Binio.read_uvarint r in
              if not (Binio.at_end r) then Binio.fail "trailing header bytes";
              { h_version; h_shard; h_nshards; h_gen }
            with
            | exception Binio.Decode_error m ->
                Error (Printf.sprintf "%s: %s" path m)
            | header ->
                let records = ref [] in
                let rec go pos =
                  if pos >= total then Complete
                  else
                    match read_block src pos with
                    | `Short -> Truncated pos
                    | `Bad reason -> Corrupt { offset = pos; reason }
                    | `Block (payload, next) -> (
                        match
                          let r = Binio.reader payload in
                          let rec_ = read_record r in
                          if not (Binio.at_end r) then
                            Binio.fail "trailing record bytes";
                          rec_
                        with
                        | exception Binio.Decode_error m ->
                            Corrupt { offset = pos; reason = m }
                        | rec_ ->
                            records := rec_ :: !records;
                            go next)
                in
                let tail = go pos0 in
                Ok (header, List.rev !records, tail)))
