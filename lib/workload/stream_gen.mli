(** A streaming clean-history generator for large corpora.

    Plays a perfectly serial execution of the MT workload shapes
    ({!Mt_gen.shape_weights}) in one pass with O(num_keys) memory:
    reads return each key's current value, writes assign globally
    unique fresh values, and transaction [i] runs entirely inside
    logical time [(2i, 2i+1)].  The emitted history therefore passes
    SSER (and so SER and SI) by construction — the scaling benchmarks'
    worst case, since a clean history forces the checker to build and
    traverse the whole dependency graph.

    Each transaction is handed to [emit] and immediately dropped, so
    feeding {!Codec.Bin_writer} produces multi-million-transaction
    files without ever materializing the history. *)

type params = {
  num_txns : int;
  num_keys : int;
  num_sessions : int;
  dist : Distribution.kind;
  seed : int;
  ts_skew : int;
      (** perturb each transaction's start/commit timestamps by up to
          this many ticks (commit clamped to start); 0 = faithful *)
  ts_lie : float;
      (** probability that a transaction reports the (start, commit)
          window of a random earlier transaction — a lying timestamp
          oracle, undetectable by values; 0.0 = faithful *)
}

val default : params
(** 100k txns over 10k keys, 16 sessions, uniform, seed 42, faithful
    timestamps. *)

val generate : params -> (Txn.t -> unit) -> unit
(** [generate p emit] calls [emit] once per transaction, ids 1..n in
    order — exactly the contract of {!Codec.Bin_writer.add}.  Timestamp
    perturbation ([ts_skew] / [ts_lie]) draws from a dedicated RNG
    stream, so corpora of the same seed differ only in timestamps —
    never in ops or values.
    @raise Invalid_argument if [num_sessions] or [num_keys] < 1, or a
    timestamp knob is out of range. *)
