(** Cycle detection with witness extraction.

    The checkers report isolation violations as concrete dependency cycles
    (paper Step 4 of Figure 2), so beyond a boolean answer we extract the
    edge sequence of some cycle. *)

val find : 'lab Digraph.t -> (int * 'lab * int) list option
(** [find g] is [None] if [g] is acyclic, otherwise [Some edges] where
    [edges = [(v0,l0,v1); (v1,l1,v2); ...; (vk,lk,v0)]] is a simple cycle.
    Iterative DFS; O(V + E). *)

val is_acyclic : 'lab Digraph.t -> bool

val shortest_through : 'lab Digraph.t -> int -> (int * 'lab * int) list option
(** [shortest_through g v] is a shortest cycle passing through [v]
    (BFS from [v] back to [v]), used to produce compact counterexamples. *)
