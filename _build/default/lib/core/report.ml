let classify (v : Checker.violation) =
  match v with
  | Checker.Intra { kind; _ } ->
      Some
        (match kind with
        | Int_check.Thin_air_read -> Anomaly.Thin_air_read
        | Int_check.Aborted_read _ -> Anomaly.Aborted_read
        | Int_check.Future_read -> Anomaly.Future_read
        | Int_check.Not_my_last_write -> Anomaly.Not_my_last_write
        | Int_check.Not_my_own_write -> Anomaly.Not_my_own_write
        | Int_check.Intermediate_read _ -> Anomaly.Intermediate_read
        | Int_check.Non_repeatable_reads -> Anomaly.Non_repeatable_reads)
  | Checker.Diverged _ -> Some Anomaly.Lost_update
  | Checker.Malformed _ -> None
  | Checker.Cyclic cycle ->
      let is_rw = function Deps.RW _ -> true | _ -> false in
      let labels = List.map (fun (_, d, _) -> d) cycle in
      let rw_count = List.length (List.filter is_rw labels) in
      let n = List.length labels in
      let adjacent_rw =
        (* cyclically adjacent *)
        let arr = Array.of_list labels in
        let adj = ref false in
        for i = 0 to n - 1 do
          if is_rw arr.(i) && is_rw arr.((i + 1) mod n) then adj := true
        done;
        !adj
      in
      let has_so = List.exists (function Deps.SO -> true | _ -> false) labels in
      let keys =
        List.filter_map
          (function
            | Deps.RW k | Deps.WW k | Deps.WR k -> Some k | Deps.RT | Deps.SO | Deps.Rt_chain -> None)
          labels
        |> List.sort_uniq compare
      in
      if rw_count = 2 && adjacent_rw && List.length keys >= 2 then
        Some Anomaly.Write_skew
      else if rw_count = 2 && adjacent_rw then Some Anomaly.Lost_update
      else if rw_count >= 2 then Some Anomaly.Long_fork
      else if has_so && n = 2 then Some Anomaly.Session_guarantee_violation
      else if rw_count = 1 && n = 2 then Some Anomaly.Non_monotonic_read
      else if rw_count = 1 then Some Anomaly.Causality_violation
      else None

let render (h : History.t) level (v : Checker.violation) =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "%s violation" (Checker.level_name level);
  (match classify v with
  | Some kind -> addf " [%s: %s]" (Anomaly.name kind) (Anomaly.description kind)
  | None -> ());
  addf "\n  %s\n" (Format.asprintf "%a" Checker.pp_violation v);
  let mention =
    match v with
    | Checker.Intra { txn; kind; _ } -> (
        txn
        ::
        (match kind with
        | Int_check.Aborted_read w | Int_check.Intermediate_read w -> [ w ]
        | _ -> []))
    | Checker.Diverged i ->
        let r1, _ = i.Divergence.reader1 and r2, _ = i.Divergence.reader2 in
        [ i.Divergence.writer; r1; r2 ]
    | Checker.Cyclic cycle ->
        List.concat_map (fun (a, _, b) -> [ a; b ]) cycle
    | Checker.Malformed _ -> []
  in
  let mention = List.sort_uniq compare (List.filter (fun t -> t >= 0) mention) in
  if mention <> [] then begin
    addf "  involved transactions:\n";
    List.iter
      (fun id ->
        if id = History.init_id then
          addf "    T0[the initial transaction]\n"
        else
          addf "    %s\n" (Format.asprintf "%a" Txn.pp (History.txn h id)))
      mention
  end;
  (match Checker.ce_position v with
  | Some p -> addf "  counterexample position: %d\n" p
  | None -> ());
  Buffer.contents buf

let summary h outcomes =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (History.stats h);
  Buffer.add_char buf '\n';
  List.iter
    (fun (level, outcome) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-4s : %s\n"
           (Checker.level_name level)
           (Format.asprintf "%a" Checker.pp_outcome outcome)))
    outcomes;
  Buffer.contents buf
