examples/anomaly_gallery.mli:
