#!/usr/bin/env bash
# End-to-end smoke of the timestamp-assisted fast path (ROADMAP item 2):
# `mtc gen` clean / skewed / lying corpora (same seed => same ops and
# values, only the timestamps differ), `--timestamps verify` must agree
# byte-for-byte with `ignore` everywhere while reporting every
# certification mismatch on stderr, `trust` must be the fastest mode on
# a clean corpus, and `-j 1/2/4` must print byte-identical output in
# all three modes.  Wired into `dune build @check` from the root dune
# file.
set -u

MTC="$1"
TMP=$(mktemp -d)
cleanup() { rm -rf "$TMP"; }
trap cleanup EXIT

fail() { echo "ts-smoke: FAIL: $*" >&2; exit 1; }

# -- corpora.  The lying corpus reports the timestamp window of a random
# earlier transaction for ~2% of txns; the skewed corpus drifts every
# window by up to 3 ticks but stays honest about ordering intent.
GEN="--txns 60000 --keys 4000 --sessions 16 --seed 23"
"$MTC" gen $GEN --out-bin "$TMP/clean.bin" >/dev/null \
  || fail "mtc gen (clean) must succeed"
"$MTC" gen $GEN --ts-lie 0.02 --out-bin "$TMP/lying.bin" >/dev/null \
  || fail "mtc gen --ts-lie must succeed"
"$MTC" gen $GEN --ts-skew 3 --out-bin "$TMP/skew.bin" >/dev/null \
  || fail "mtc gen --ts-skew must succeed"

check() { # file level mode jobs; stdout/stderr to $TMP/out,err
  "$MTC" check "$1" --level "$2" --timestamps "$3" -j "$4" \
    > "$TMP/out" 2> "$TMP/err"
}

# -- clean corpus: all three modes pass every strong level with
# byte-identical stdout, and verify has nothing to report
for level in sser ser si; do
  check "$TMP/clean.bin" "$level" ignore 1 \
    || fail "clean corpus must pass $level (ignore)"
  mv "$TMP/out" "$TMP/base.out"
  for mode in trust verify; do
    check "$TMP/clean.bin" "$level" "$mode" 1 \
      || fail "clean corpus must pass $level ($mode)"
    cmp -s "$TMP/base.out" "$TMP/out" \
      || fail "clean corpus: $mode stdout differs from ignore at $level"
    [ -s "$TMP/err" ] \
      && fail "clean corpus: $mode reported mismatches at $level"
  done
done

# -- skewed-but-honest corpus: commit order is intact, so verify's
# predictions all certify — same verdict, still nothing on stderr
for level in ser si; do
  check "$TMP/skew.bin" "$level" ignore 1 \
    || fail "skewed corpus must pass $level (ignore)"
  mv "$TMP/out" "$TMP/base.out"
  check "$TMP/skew.bin" "$level" verify 1 \
    || fail "skewed corpus must pass $level (verify)"
  cmp -s "$TMP/base.out" "$TMP/out" \
    || fail "skewed corpus: verify stdout differs from ignore at $level"
done

# -- lying corpus: SER/SI verdicts ignore timestamps, so ignore still
# passes; verify must agree on stdout AND surface the lies on stderr.
# (SSER is excluded: its real-time edges are derived from the lying
# timestamps even in ignore mode, so the verdicts legitimately differ.)
for level in ser si; do
  check "$TMP/lying.bin" "$level" ignore 1 \
    || fail "lying corpus must still pass $level (ignore: values are clean)"
  mv "$TMP/out" "$TMP/base.out"
  check "$TMP/lying.bin" "$level" verify 1 \
    || fail "lying corpus must pass $level (verify falls back on mismatch)"
  cmp -s "$TMP/base.out" "$TMP/out" \
    || fail "lying corpus: verify stdout differs from ignore at $level"
  grep -q "timestamp certification" "$TMP/err" \
    || fail "lying corpus: verify must report certification mismatches at $level"
  # trust believes the lies: tolerated verdict, but never a crash
  check "$TMP/lying.bin" "$level" trust 1
  rc=$?
  [ "$rc" -le 1 ] || fail "lying corpus: trust must exit 0/1 at $level, got $rc"
done

# -- trust must be the fastest mode on a clean corpus (generous margin:
# it skips certification AND the duplicate-value screen, measured >=2x
# in the benchmarks, so a plain <= comparison is robust; one retry
# absorbs scheduler noise)
ms() { # file mode -> milliseconds on stdout
  local t0 t1
  t0=$(date +%s%N)
  check "$1" ser "$2" 1 || fail "timing run must pass ($2)"
  t1=$(date +%s%N)
  echo $(( (t1 - t0) / 1000000 ))
}
t_ignore=$(ms "$TMP/clean.bin" ignore)
t_trust=$(ms "$TMP/clean.bin" trust)
if [ "$t_trust" -gt "$t_ignore" ]; then
  t_ignore=$(ms "$TMP/clean.bin" ignore)
  t_trust=$(ms "$TMP/clean.bin" trust)
  [ "$t_trust" -le "$t_ignore" ] \
    || fail "trust (${t_trust}ms) must not be slower than ignore (${t_ignore}ms)"
fi

# -- byte-identical stdout and stderr across -j in all three modes, on
# the corpus most at risk (lying: verify exercises fallback + report)
for mode in ignore trust verify; do
  check "$TMP/lying.bin" ser "$mode" 1; rc1=$?
  mv "$TMP/out" "$TMP/j1.out"; mv "$TMP/err" "$TMP/j1.err"
  for j in 2 4; do
    check "$TMP/lying.bin" ser "$mode" "$j"; rc=$?
    [ "$rc" -eq "$rc1" ] || fail "$mode: exit $rc at -j $j vs $rc1 at -j 1"
    cmp -s "$TMP/j1.out" "$TMP/out" \
      || fail "$mode: stdout differs at -j $j"
    cmp -s "$TMP/j1.err" "$TMP/err" \
      || fail "$mode: stderr differs at -j $j"
  done
done

echo "ts-smoke: OK"
