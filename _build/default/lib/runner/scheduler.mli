(** The client harness: executes a workload specification against the
    simulated engine under a randomized operation-level interleaving
    (paper Figure 2, steps 1–3).

    Each session is a state machine; every scheduler step advances one
    randomly chosen session by one operation (begin / read / write /
    commit).  Aborted transactions are retried with fresh write values up
    to [max_attempts]; lock-blocked operations simply retry when the
    session is next scheduled (wound-wait guarantees global progress).
    All attempts, committed and aborted, are recorded — the combined log
    is the history handed to the checkers. *)

type params = { seed : int; max_attempts : int }

val default_params : params  (** seed 7, 64 attempts *)

type result = {
  history : History.t;
  db_stats : Db.stats;
  attempts : int;  (** total transaction attempts (>= committed) *)
  committed : int;
  gave_up : int;  (** transactions dropped after [max_attempts] *)
  ticks : int;  (** final logical clock *)
  elle : Elle_log.t option;
      (** client-level append log, when the spec contains appends *)
}

val abort_rate : result -> float
(** aborted attempts / total attempts — the metric of Figure 11. *)

val run : ?params:params -> db:Db.config -> spec:Spec.t -> unit -> result
(** @raise Invalid_argument if the spec contains appends and the config
    level is [Strict_serializable] (appends need two engine calls and are
    only supported on the non-blocking levels). *)
