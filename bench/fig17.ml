(* Figure 17 (Appendix D): end-to-end SI checking — MTC-SI (MT workloads)
   vs PolySI (GT workloads), time decomposed into generation and
   verification, plus the verifier's memory. *)

let header =
  [ "checker/config"; "gen (ms)"; "verify (ms)"; "non-solver (ms)";
    "solver (ms)"; "verify alloc (MB)"; "verdict" ]

let mtc_row label ~keys ~txns ~seed =
  let r, gen =
    Stats.time_it (fun () ->
        Bench_util.mt_history ~level:Isolation.Snapshot ~keys ~txns ~seed ())
  in
  let outcome, alloc =
    Bench_util.alloc_during (fun () -> Checker.check_si r.Scheduler.history)
  in
  let verify =
    Bench_util.time_median (fun () -> Checker.check_si r.Scheduler.history)
  in
  [
    "MTC-SI " ^ label;
    Bench_util.ms gen;
    Bench_util.ms verify;
    "-";
    "-";
    Bench_util.mb alloc;
    Bench_util.verdict_str (Checker.passes outcome);
  ]

let polysi_row label ~keys ~txns ~seed =
  let r, gen =
    Stats.time_it (fun () ->
        Bench_util.gt_history ~level:Isolation.Snapshot ~keys ~txns ~ops:8 ~seed ())
  in
  let res, alloc =
    Bench_util.alloc_during (fun () -> Polysi.check r.Scheduler.history)
  in
  let s = res.Polysi.stats in
  [
    "PolySI " ^ label;
    Bench_util.ms gen;
    Bench_util.ms (Polysi.total_s s);
    Bench_util.ms (Polysi.nonsolver_s s);
    Bench_util.ms s.Polysi.solve_s;
    Bench_util.mb alloc;
    Bench_util.verdict_str res.Polysi.si;
  ]

let run () =
  Bench_util.section
    "Figure 17: end-to-end SI checking, MTC-SI (MT) vs PolySI (GT)";
  Bench_util.subsection "#txns sweep (100 keys, 10 sessions, GT: 8 ops/txn)";
  Bench_util.print_table ~header
    (List.concat
       (Bench_util.par_map
          (fun txns ->
            let label = Printf.sprintf "%d txns" txns in
            [
              mtc_row label ~keys:100 ~txns ~seed:171;
              polysi_row label ~keys:100 ~txns ~seed:171;
            ])
          (Bench_util.sweep (List.map Bench_util.scale [ 250; 500; 1000 ]))))
