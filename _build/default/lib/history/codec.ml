let to_string (h : History.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "mtc-history v1\n";
  Buffer.add_string buf (Printf.sprintf "keys %d\n" h.num_keys);
  Buffer.add_string buf (Printf.sprintf "sessions %d\n" h.num_sessions);
  Array.iter
    (fun (t : Txn.t) ->
      if t.id <> History.init_id then begin
        Buffer.add_string buf
          (Printf.sprintf "txn %d %d %s %d %d" t.id t.session
             (match t.status with Txn.Committed -> "C" | Txn.Aborted -> "A")
             t.start_ts t.commit_ts);
        Array.iter
          (fun op ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (Op.to_string op))
          t.ops;
        Buffer.add_char buf '\n'
      end)
    h.txns;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match lines with
  | header :: rest when header = "mtc-history v1" -> (
      let parse_kv name line =
        match String.split_on_char ' ' line with
        | [ k; v ] when k = name -> int_of_string_opt v
        | _ -> None
      in
      match rest with
      | keys_line :: sessions_line :: txn_lines -> (
          match
            (parse_kv "keys" keys_line, parse_kv "sessions" sessions_line)
          with
          | Some num_keys, Some num_sessions -> (
              let parse_txn line =
                match String.split_on_char ' ' line with
                | "txn" :: id :: session :: status :: start :: commit :: ops ->
                    let ( let* ) = Option.bind in
                    let* id = int_of_string_opt id in
                    let* session = int_of_string_opt session in
                    let* status =
                      match status with
                      | "C" -> Some Txn.Committed
                      | "A" -> Some Txn.Aborted
                      | _ -> None
                    in
                    let* start_ts = int_of_string_opt start in
                    let* commit_ts = int_of_string_opt commit in
                    let* ops =
                      List.fold_right
                        (fun op_s acc ->
                          let* acc = acc in
                          let* op = Op.of_string op_s in
                          Some (op :: acc))
                        ops (Some [])
                    in
                    Some
                      (Txn.make ~id ~session ~status ~start_ts ~commit_ts ops)
                | _ -> None
              in
              let txns =
                List.fold_right
                  (fun line acc ->
                    match acc with
                    | Error _ -> acc
                    | Ok ts -> (
                        match parse_txn line with
                        | Some t -> Ok (t :: ts)
                        | None -> Error line))
                  txn_lines (Ok [])
              in
              match txns with
              | Error line -> fail "unparseable txn line: %S" line
              | Ok txns -> (
                  try Ok (History.make ~num_keys ~num_sessions txns)
                  with Invalid_argument m -> Error m))
          | _ -> fail "bad keys/sessions header")
      | _ -> fail "truncated header")
  | _ -> fail "missing magic line 'mtc-history v1'"

let save path h =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string h))

let load path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
  with Sys_error m -> Error m
