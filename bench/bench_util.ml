(* Shared helpers for the benchmark harness: history generation through
   the engine, timing, paper-style table printing, parallel sweeps, and
   machine-readable (JSON) result capture. *)

(* --- global harness switches (set by main.ml from the command line) --- *)

(* Worker pool for parallel config sweeps (main.exe -- -j N). *)
let pool : Pool.t option ref = ref None

(* Smoke mode (main.exe -- --smoke): one tiny config per experiment, so
   `dune build @bench-smoke` can gate PRs in seconds. *)
let smoke = ref false

let jobs () = match !pool with Some p -> Pool.size p | None -> 1

(* Map over a sweep's config points, concurrently when a pool is set.
   Rows are pure (printing happens after the map), so this is safe for
   every sweep built as [print_table (par_map row configs)]. *)
let par_map f xs =
  match !pool with
  | Some p when Pool.size p > 1 -> Pool.map_list p f xs
  | _ -> List.map f xs

(* Sweep shrinkers for --smoke: keep the first config point only, and
   scale raw transaction counts down. *)
let sweep l = if !smoke then [ List.hd l ] else l
let scale n = if !smoke then Stdlib.max 50 (n / 20) else n

(* --- table printing + capture --- *)

type recorded_table = {
  rt_section : string;
  rt_header : string list;
  rt_rows : string list list;
}

let recorded : recorded_table list ref = ref []
let current_section = ref ""

let begin_experiment () =
  recorded := [];
  current_section := ""

let section title =
  current_section := "";
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title =
  current_section := title;
  Printf.printf "\n--- %s ---\n" title

(* Aligned table printing. *)
let print_table ~header rows =
  recorded :=
    { rt_section = !current_section; rt_header = header; rt_rows = rows }
    :: !recorded;
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun w row -> Stdlib.max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

(* One JSON object per experiment (JSONL): every table the experiment
   printed, cells as strings, so future PRs can diff BENCH_*.json instead
   of scraping stdout. *)
let experiment_json ~name ~elapsed_s =
  let buf = Buffer.create 1024 in
  let str s =
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  in
  let list f l =
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        f x)
      l;
    Buffer.add_char buf ']'
  in
  Buffer.add_string buf "{\"experiment\":";
  str name;
  Buffer.add_string buf (Printf.sprintf ",\"elapsed_s\":%.6f" elapsed_s);
  Buffer.add_string buf (Printf.sprintf ",\"jobs\":%d" (jobs ()));
  Buffer.add_string buf (Printf.sprintf ",\"smoke\":%b" !smoke);
  Buffer.add_string buf ",\"tables\":";
  list
    (fun t ->
      Buffer.add_string buf "{\"section\":";
      str t.rt_section;
      Buffer.add_string buf ",\"header\":";
      list str t.rt_header;
      Buffer.add_string buf ",\"rows\":";
      list (list str) t.rt_rows;
      Buffer.add_char buf '}')
    (List.rev !recorded);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* --- formatting helpers --- *)

let ms t = Printf.sprintf "%.2f" (1000.0 *. t)
let mb bytes = Printf.sprintf "%.1f" (bytes /. 1_048_576.0)
let pct x = Printf.sprintf "%.1f" (100.0 *. x)

(* Median-of-k timing of a single function. *)
let time_median ?(repeat = 3) f =
  let samples = Stats.time_repeat ~warmup:1 ~repeat f in
  Stats.median samples

(* Generate an MT history through the engine at a given level. *)
let mt_history ?(level = Isolation.Serializable) ?(dist = Distribution.Uniform)
    ?(sessions = 10) ?(keys = 500) ~txns ~seed () =
  let spec =
    Mt_gen.generate
      { Mt_gen.num_sessions = sessions; num_txns = txns; num_keys = keys; dist; seed }
  in
  let db = { Db.level; fault = Fault.No_fault; num_keys = keys; seed } in
  Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ()

let gt_history ?(level = Isolation.Serializable) ?(dist = Distribution.Uniform)
    ?(sessions = 10) ?(keys = 500) ?(ops = 10) ~txns ~seed () =
  let spec =
    Gt_gen.generate
      { Gt_gen.num_sessions = sessions; num_txns = txns; num_keys = keys;
        ops_per_txn = ops; dist; seed }
  in
  let db = { Db.level; fault = Fault.No_fault; num_keys = keys; seed } in
  Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ()

(* Allocation (bytes) during [f] — the memory metric of Figures 10d-f/17.
   The heap is normalized first: GC state inherited from earlier
   experiments (e.g. Porcupine's state-space search in fig9) otherwise
   inflates the counter by up to ~1MB, making the promoted numbers
   depend on experiment order instead of on [f]. *)
let alloc_during f =
  Gc.full_major ();
  let a0 = Gc.allocated_bytes () in
  let r = f () in
  (r, Gc.allocated_bytes () -. a0)

let verdict_str b = if b then "pass" else "VIOLATION"
