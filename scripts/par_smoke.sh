#!/usr/bin/env bash
# End-to-end smoke of the parallel checking path: `mtc gen` must produce
# text and binary corpora that load identically, and `mtc check -j N`
# must print byte-identical output (stats line, verdict, counterexample)
# for every N on clean and faulty histories in both formats.  Also runs
# the service smoke with MTC_JOBS set, exercising multi-shard sessions
# end to end.  Wired into `dune build @check` from the root dune file.
set -u

MTC="$1"
TMP=$(mktemp -d)
cleanup() { rm -rf "$TMP"; }
trap cleanup EXIT

fail() { echo "par-smoke: FAIL: $*" >&2; exit 1; }

# -- fixtures: a clean generated corpus (text + bin) and a faulty run
"$MTC" gen --txns 3000 --keys 300 --sessions 8 --seed 11 \
  --out "$TMP/clean.hist" --out-bin "$TMP/clean.bin" >/dev/null \
  || fail "mtc gen must succeed"
"$MTC" run --level ser --fault lost-update --fault-p 0.3 --txns 800 \
  --seed 7 -o "$TMP/faulty.hist" >/dev/null 2>&1
[ -f "$TMP/faulty.hist" ] || fail "faulty fixture must be written"

# -- the binary and text encodings must decode to the same history:
# identical stats lines and identical verdicts
check_out() { # file level jobs -> stdout (exit code tolerated)
  "$MTC" check "$1" --level "$2" -j "$3"
}

for level in sser ser si; do
  check_out "$TMP/clean.hist" "$level" 1 > "$TMP/text.out" \
    || fail "clean text history must pass $level"
  check_out "$TMP/clean.bin" "$level" 1 > "$TMP/bin.out" \
    || fail "clean bin history must pass $level"
  cmp -s "$TMP/text.out" "$TMP/bin.out" \
    || fail "text and bin checks disagree at $level"
done

# -- byte-identical output across -j on every (file, level) pair,
# including a violating history (counterexample selection is the part
# most at risk of nondeterminism)
for f in "$TMP/clean.bin" "$TMP/faulty.hist"; do
  for level in ser si; do
    check_out "$f" "$level" 1 > "$TMP/j1.out"; rc1=$?
    for j in 2 4; do
      check_out "$f" "$level" "$j" > "$TMP/j$j.out"; rc=$?
      [ "$rc" -eq "$rc1" ] \
        || fail "$(basename "$f") $level: exit $rc at -j $j vs $rc1 at -j 1"
      cmp -s "$TMP/j1.out" "$TMP/j$j.out" \
        || fail "$(basename "$f") $level: output differs at -j $j (diff $TMP/j1.out $TMP/j$j.out)"
    done
  done
done

# -- explicit --format must agree with sniffing, and reject mismatches
"$MTC" check "$TMP/clean.bin" --format bin -l ser -j 2 > /dev/null \
  || fail "--format bin must accept a bin file"
"$MTC" check "$TMP/clean.hist" --format text -l ser > /dev/null \
  || fail "--format text must accept a text file"
if "$MTC" check "$TMP/clean.bin" --format text -l ser > /dev/null 2>&1; then
  fail "--format text on a bin file must fail"
fi

# -- the service under multi-shard settings: reuse the service smoke
# with MTC_JOBS exported, so every `mtc serve` in it runs sharded
SMOKE="$(dirname "$0")/service_smoke.sh"
if [ -f "$SMOKE" ]; then
  for j in 2 4; do
    MTC_JOBS=$j bash "$SMOKE" "$MTC" \
      || fail "service smoke must pass with MTC_JOBS=$j"
  done
fi

echo "par-smoke: OK"
