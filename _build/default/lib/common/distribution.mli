(** Object-access distributions for workload generation.

    The paper's MT workload generator is parameterized by an
    object-access distribution controlling workload skewness
    (Section V-A1): uniform, zipfian, hotspot and exponential. *)

type kind =
  | Uniform
  | Zipfian of float  (** skew exponent [theta]; the paper uses ~0.99 *)
  | Hotspot of float * float
      (** [Hotspot (hot_fraction, hot_prob)]: a [hot_fraction] of the key
          space receives [hot_prob] of the accesses *)
  | Exponential of float
      (** decay rate; small keys are exponentially more popular *)

type t

val make : kind -> n:int -> t
(** [make kind ~n] prepares a sampler over keys [0 .. n-1].
    Requires [n > 0]. *)

val kind : t -> kind
val size : t -> int

val sample : t -> Rng.t -> int
(** Draw one key. *)

val default_zipf_theta : float
(** 0.99, the YCSB default used throughout the evaluation. *)

val all_kinds : kind list
(** The four kinds evaluated in Figures 7a/8a, with default parameters. *)

val kind_name : kind -> string
val kind_of_string : string -> kind option
