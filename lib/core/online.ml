(* The streaming checker's hot path is flat ints end to end: a
   Pearce–Kelly graph grown in place (no edge replay on capacity
   doubling), edge labels in a packed-int map, and reader/overwriter/
   extender tiers on Flat_index — no tuple-keyed hashtables, no boxed
   list cells.  Feeding a committed transaction allocates a bounded
   amount (the transaction's own op-list views plus amortized vector
   growth), independent of how many transactions came before. *)

(* Int-packed dependency labels (same scheme as the Deps flat edge
   stream): 0/1/2 are the keyless constants, a keyed label packs as
   [4 + (key lsl 2) lor tag]. *)
let pack_dep = function
  | Deps.RT -> 0
  | Deps.SO -> 1
  | Deps.Rt_chain -> 2
  | Deps.WR k -> 4 + ((k lsl 2) lor 0)
  | Deps.WW k -> 4 + ((k lsl 2) lor 1)
  | Deps.RW k -> 4 + ((k lsl 2) lor 2)

let unpack_dep p =
  if p = 0 then Deps.RT
  else if p = 1 then Deps.SO
  else if p = 2 then Deps.Rt_chain
  else
    let q = p - 4 in
    let k = q lsr 2 in
    match q land 3 with 0 -> Deps.WR k | 1 -> Deps.WW k | _ -> Deps.RW k

(* Growable Pearce–Kelly graph with labelled edges.  Capacity doubles in
   place ({!Pearce_kelly.ensure}); a duplicate edge is accepted without
   touching the label or the count, and a rejected (cycle-closing) edge
   leaves no label behind — the label of the offending edge travels with
   the rejection instead (see {!cycle_of_path}). *)
module Grow = struct
  type t = {
    pk : Pearce_kelly.t;
    mutable capacity : int;
    mutable edge_count : int;  (** distinct edges accepted *)
    labels : Flat_index.t;  (** packed (u lsl 31) lor v -> packed dep *)
  }

  let create () =
    {
      pk = Pearce_kelly.create 64;
      capacity = 64;
      edge_count = 0;
      labels = Flat_index.create ~capacity:256 ();
    }

  let edge_count t = t.edge_count

  let ensure t needed =
    if needed > t.capacity then begin
      let capacity = ref t.capacity in
      while needed > !capacity do
        capacity := 2 * !capacity
      done;
      Pearce_kelly.ensure t.pk !capacity;
      t.capacity <- !capacity
    end

  let edge_key u v = (u lsl 31) lor v

  (* [Error path]: vertex path [v; ...; u] for the rejected edge u -> v. *)
  let add_edge t u v lab =
    ensure t (1 + Stdlib.max u v);
    if Pearce_kelly.mem_edge t.pk u v then Ok () (* duplicate: no-op *)
    else
      match Pearce_kelly.add_edge t.pk u v with
      | Ok () ->
          Flat_index.set t.labels (edge_key u v) (pack_dep lab);
          t.edge_count <- t.edge_count + 1;
          Ok ()
      | Error path -> Error path

  let label t u v =
    let p = Flat_index.get t.labels (edge_key u v) in
    if p >= 0 then unpack_dep p else Deps.Rt_chain
end

type t = {
  level : Checker.level;
  skew : int;
  ts_mode : Ts.mode;
  graph : Grow.t;
  mutable next_vertex : int;
  vertex_txn : Int_vec.t;  (** vertex -> txn id; -1 for helper vertices *)
  txn_vertex : Flat_index.t;  (** txn id -> base vertex (SI: the d-vertex) *)
  writers : Flat_index.Writers.t;
      (** final / intermediate / aborted writer resolution, int-packed *)
  readers : Flat_index.Multi.t;
  overwriters : Flat_index.Multi.t;
  extender : Flat_index.Pairs.t;  (** (k, v) -> (reader txn, its write) *)
  session_last : Flat_index.t;  (** session -> last committed txn id *)
  seen_ids : Flat_index.t;
  (* SSER stream state: commits in arrival (= commit_ts) order *)
  commit_ts : Int_vec.t;
  commit_helper : Int_vec.t;  (** helper vertex of the same commit *)
  mutable last_commit : int;
  mutable count : int;
  mutable poisoned : Checker.violation option;
  (* Timestamp fast path (Vbox mode, {!Ts}): per-key version chains in
     commit-timestamp order, as cons chains threaded through flat int
     vectors (newest first — commit-order arrival, enforced for ts
     modes, keeps them sorted without insertion).  [Trust] attributes
     every external read to its predicted writer outright; [Verify]
     certifies the prediction against the value read and falls back per
     key to the value tables on a mismatch.  The tables themselves stay
     maintained in every mode — they also back the duplicate-write and
     divergence screens — so the online fast path changes read
     attribution (and supplies certification statistics), not table
     upkeep. *)
  chain_head : Flat_index.t;  (** key -> newest chain node, or absent *)
  ch_commit : Int_vec.t;
  ch_writer : Int_vec.t;
  ch_value : Int_vec.t;
  ch_next : Int_vec.t;
  ts_slow : Bytes.t;  (** verify: per-key certification-failed flag *)
  mutable ts_fast : int;
  mutable ts_mismatched : int;
}

type step = Ok_so_far | Violation of Checker.violation

type stats = {
  s_txns_seen : int;
  s_vertices : int;
  s_edges : int;
  s_poisoned : bool;
  s_ts_fast : int;
  s_ts_mismatched : int;
}

let txns_seen t = t.count
let level t = t.level
let ts_mode t = t.ts_mode
let poisoned t = t.poisoned

let stats t =
  {
    s_txns_seen = t.count;
    s_vertices = t.next_vertex;
    s_edges = t.graph.Grow.edge_count;
    s_poisoned = t.poisoned <> None;
    s_ts_fast = t.ts_fast;
    s_ts_mismatched = t.ts_mismatched;
  }

let vertices_per_txn level = match level with Checker.SI -> 2 | _ -> 1

let alloc_vertices t (txn : Txn.t) =
  let base = t.next_vertex in
  let n = vertices_per_txn t.level in
  t.next_vertex <- base + n;
  Flat_index.set t.txn_vertex txn.Txn.id base;
  Int_vec.push t.vertex_txn txn.Txn.id;
  if n = 2 then Int_vec.push t.vertex_txn txn.Txn.id;
  base

let alloc_helper t =
  let h = t.next_vertex in
  t.next_vertex <- h + 1;
  Int_vec.push t.vertex_txn (-1);
  h

let create ?(skew = 0) ?(ts = Ts.Ignore) ~level ~num_keys () =
  let t =
    {
      level;
      skew;
      ts_mode = ts;
      graph = Grow.create ();
      next_vertex = 0;
      vertex_txn = Int_vec.create 256;
      txn_vertex = Flat_index.create ~capacity:256 ();
      writers = Flat_index.Writers.create ~num_keys ~expected:1024;
      readers = Flat_index.Multi.create ~num_keys ();
      overwriters = Flat_index.Multi.create ~num_keys ();
      extender = Flat_index.Pairs.create ~num_keys ();
      session_last = Flat_index.create ~capacity:16 ();
      seen_ids = Flat_index.create ~capacity:1024 ();
      commit_ts = Int_vec.create 256;
      commit_helper = Int_vec.create 256;
      last_commit = min_int;
      count = 0;
      poisoned = None;
      chain_head = Flat_index.create ~capacity:(if ts = Ts.Ignore then 16 else 256) ();
      ch_commit = Int_vec.create 16;
      ch_writer = Int_vec.create 16;
      ch_value = Int_vec.create 16;
      ch_next = Int_vec.create 16;
      ts_slow =
        (if ts = Ts.Verify then Bytes.make num_keys '\000' else Bytes.empty);
      ts_fast = 0;
      ts_mismatched = 0;
    }
  in
  let init = History.init_txn ~num_keys in
  Flat_index.set t.seen_ids init.Txn.id 1;
  let init_writes = Txn.final_writes init in
  List.iter
    (fun (k, v) -> Flat_index.Writers.set_final t.writers k v init.Txn.id)
    init_writes;
  ignore (alloc_vertices t init);
  if ts <> Ts.Ignore then
    (* The initial version of every key sits at the bottom of its chain
       (commit_ts = min_int), so prediction is total over in-range keys
       — exactly {!Ts.predict}'s invariant. *)
    List.iter
      (fun (k, v) ->
        let n = Int_vec.length t.ch_commit in
        Int_vec.push t.ch_commit min_int;
        Int_vec.push t.ch_writer init.Txn.id;
        Int_vec.push t.ch_value v;
        Int_vec.push t.ch_next (-1);
        Flat_index.set t.chain_head k n)
      init_writes;
  t

let resolve t k v = Flat_index.Writers.resolve t.writers k v

(* The newest chain node of [k] with [commit_ts <= start_ts] — the
   writer an MVCC engine's visibility rule predicts the read observed.
   Chains are sorted newest-first (commit-order arrival is enforced for
   ts modes), and readers mostly observe recent versions, so the walk is
   short in the steady state.  -1 when the key has no chain (out of
   range). *)
let predict_node t k ~start_ts =
  let rec go n =
    if n < 0 then -1
    else if Int_vec.get t.ch_commit n <= start_ts then n
    else go (Int_vec.get t.ch_next n)
  in
  go (Flat_index.get t.chain_head k)

let push_chain t k ~commit_ts ~writer ~value =
  let n = Int_vec.length t.ch_commit in
  Int_vec.push t.ch_commit commit_ts;
  Int_vec.push t.ch_writer writer;
  Int_vec.push t.ch_value value;
  Int_vec.push t.ch_next (Flat_index.get t.chain_head k);
  Flat_index.set t.chain_head k n

(* Timestamp-assisted attribution of an external read.  [count]
   separates the certification statistics (tallied once, in the INT
   screen) from the edge-derivation re-resolution in [feed_committed],
   which sees the same reads a second time. *)
let resolve_ts t ~count ~start_ts k v =
  match t.ts_mode with
  | Ts.Ignore -> resolve t k v
  | Ts.Trust ->
      let n = predict_node t k ~start_ts in
      if n < 0 then resolve t k v
      else begin
        if count then t.ts_fast <- t.ts_fast + 1;
        Index.Final (Int_vec.get t.ch_writer n)
      end
  | Ts.Verify ->
      if k < 0 || k >= Bytes.length t.ts_slow
         || Bytes.unsafe_get t.ts_slow k = '\001'
      then resolve t k v
      else
        let n = predict_node t k ~start_ts in
        if n >= 0 && Int_vec.get t.ch_value n = v then begin
          if count then t.ts_fast <- t.ts_fast + 1;
          Index.Final (Int_vec.get t.ch_writer n)
        end
        else begin
          (* Certification mismatch: the timestamps lie about this key.
             Fall back to value resolution for it, permanently. *)
          Bytes.unsafe_set t.ts_slow k '\001';
          if count then t.ts_mismatched <- t.ts_mismatched + 1;
          resolve t k v
        end

(* Product encoding for SI over base vertices: dep edges fan out of both
   the d- and r-vertex into the target's d-vertex; anti edges go
   d-to-r (see Polysi for the correctness argument). *)
let encoded_edges level (u, v, lab) =
  match (level, lab) with
  | Checker.SI, (Deps.SO | Deps.WR _ | Deps.WW _) ->
      [ (u, v, lab); (u + 1, v, lab) ]
  | Checker.SI, Deps.RW _ -> [ (u, v + 1, lab) ]
  | Checker.SI, (Deps.RT | Deps.Rt_chain) -> []
  | _, lab -> [ (u, v, lab) ]

(* Map a rejected edge u -> v (attempted with label [lab]) and its PK
   path [v; ...; u] back to a transaction-level cycle.  Helper vertices
   and intra-product steps are dropped; the rejected edge carries its own
   label (it was never recorded — rejected edges leave no label behind),
   the rest come from the label table. *)
let cycle_of_path t u lab path =
  let full = u :: path in
  let txn_of vtx =
    let id = Int_vec.get t.vertex_txn vtx in
    if id < 0 then None else Some id
  in
  let label_of a b = if a = u then lab else Grow.label t.graph a b in
  let rec build acc = function
    | a :: (b :: _ as rest) ->
        let edge =
          match (txn_of a, txn_of b) with
          | Some ta, Some tb when ta <> tb -> Some (ta, label_of a b, tb)
          | _ -> None
        in
        build (match edge with Some e -> e :: acc | None -> acc) rest
    | [ last ] ->
        (* close the cycle back to u *)
        let edge =
          match (txn_of last, txn_of u) with
          | Some ta, Some tb when ta <> tb ->
              Some (ta, Grow.label t.graph last u, tb)
          | _ -> None
        in
        List.rev (match edge with Some e -> e :: acc | None -> acc)
    | [] -> List.rev acc
  in
  (* Runs through helpers collapse; label gaps as RT when endpoints
     differ but no direct label exists — the label table falls back to
     Rt_chain, rendered as RT for reporting. *)
  List.map
    (fun (a, lab, b) ->
      (a, (match lab with Deps.Rt_chain -> Deps.RT | l -> l), b))
    (build [] full)

let poison t v =
  t.poisoned <- Some v;
  Violation v

exception Cycle_found of Checker.violation

let add_all_edges t base_u base_v lab =
  List.iter
    (fun (u, v, l) ->
      match Grow.add_edge t.graph u v l with
      | Ok () -> ()
      | Error path ->
          raise (Cycle_found (Checker.Cyclic (cycle_of_path t u l path))))
    (encoded_edges t.level (base_u, base_v, lab))

let add_raw_edge t u v lab =
  match Grow.add_edge t.graph u v lab with
  | Ok () -> ()
  | Error path ->
      raise (Cycle_found (Checker.Cyclic (cycle_of_path t u lab path)))

let divergence_screen t (txn : Txn.t) =
  List.fold_left
    (fun acc (k, v) ->
      match acc with
      | Some _ -> acc
      | None ->
          if Txn.writes_key txn k then begin
            let other = Flat_index.Pairs.first t.extender k v in
            if other >= 0 then
              Some
                (Checker.Diverged
                   {
                     Divergence.key = k;
                     writer =
                       (match resolve t k v with
                       | Index.Final w -> w
                       | Index.Intermediate w | Index.Aborted w -> w
                       | Index.Nobody -> -1);
                     reader1 = (other, Flat_index.Pairs.second t.extender k v);
                     reader2 =
                       ( txn.Txn.id,
                         Option.value (Txn.write_of txn k) ~default:0 );
                   })
            else begin
              Flat_index.Pairs.set t.extender k v txn.Txn.id
                (Option.value (Txn.write_of txn k) ~default:0);
              None
            end
          end
          else None)
    None (Txn.external_reads txn)

let feed_committed t (txn : Txn.t) =
  let vtx = alloc_vertices t txn in
  (* Session order. *)
  let prev =
    let p = Flat_index.get t.session_last txn.Txn.session in
    if p >= 0 then p else History.init_id
  in
  add_all_edges t (Flat_index.get t.txn_vertex prev) vtx Deps.SO;
  Flat_index.set t.session_last txn.Txn.session txn.Txn.id;
  (* WR / WW / RW. *)
  List.iter
    (fun (k, v) ->
      match resolve_ts t ~count:false ~start_ts:txn.Txn.start_ts k v with
      | Index.Final w when w <> txn.Txn.id ->
          let wv = Flat_index.get t.txn_vertex w in
          add_all_edges t wv vtx (Deps.WR k);
          Flat_index.Multi.iter t.overwriters k v (fun o ->
              if o <> txn.Txn.id then
                add_all_edges t vtx (Flat_index.get t.txn_vertex o) (Deps.RW k));
          if Txn.writes_key txn k then begin
            add_all_edges t wv vtx (Deps.WW k);
            Flat_index.Multi.iter t.readers k v (fun r ->
                if r <> txn.Txn.id then
                  add_all_edges t
                    (Flat_index.get t.txn_vertex r)
                    vtx (Deps.RW k));
            Flat_index.Multi.push t.overwriters k v txn.Txn.id
          end;
          Flat_index.Multi.push t.readers k v txn.Txn.id
      | _ -> () (* excluded by the screen *))
    (Txn.external_reads txn);
  (* Record writes for future resolution. *)
  List.iter
    (fun (k, v) -> Flat_index.Writers.set_final t.writers k v txn.Txn.id)
    (Txn.final_writes txn);
  List.iter
    (fun (k, v) -> Flat_index.Writers.set_intermediate t.writers k v txn.Txn.id)
    (Txn.intermediate_writes txn);
  (* Timestamp modes: extend the per-key version chains.  After the
     resolutions above, so a transaction never predicts its own
     in-flight writes. *)
  if t.ts_mode <> Ts.Ignore then begin
    List.iter
      (fun (k, v) ->
        push_chain t k ~commit_ts:txn.Txn.commit_ts ~writer:txn.Txn.id
          ~value:v)
      (Txn.final_writes txn);
    if txn.Txn.commit_ts > t.last_commit then
      t.last_commit <- txn.Txn.commit_ts
  end;
  (* SSER: real-time edges through the helper chain.  Commits arrive in
     commit_ts order (enforced by add_txn), so the commit vectors are
     already sorted — binary search directly, no rebuild. *)
  if t.level = Checker.SSER then begin
    let len = Int_vec.length t.commit_ts in
    let lo = ref 0 and hi = ref (len - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if Int_vec.get t.commit_ts mid + t.skew < txn.Txn.start_ts then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best >= 0 then
      add_raw_edge t (Int_vec.get t.commit_helper !best) vtx Deps.Rt_chain;
    let h = alloc_helper t in
    add_raw_edge t vtx h Deps.Rt_chain;
    if len > 0 then
      add_raw_edge t (Int_vec.get t.commit_helper (len - 1)) h Deps.Rt_chain;
    Int_vec.push t.commit_ts txn.Txn.commit_ts;
    Int_vec.push t.commit_helper h;
    t.last_commit <- txn.Txn.commit_ts
  end

let add_txn_inner t (txn : Txn.t) =
  match t.poisoned with
  | Some v -> Violation v
  | None -> (
      if Flat_index.mem t.seen_ids txn.Txn.id || txn.Txn.id <= 0 then
        invalid_arg
          (Printf.sprintf "Online.add_txn: transaction id %d invalid or reused"
             txn.Txn.id);
      if
        (t.level = Checker.SSER || t.ts_mode <> Ts.Ignore)
        && txn.Txn.status = Txn.Committed
        && txn.Txn.commit_ts < t.last_commit
      then
        invalid_arg
          (if t.level = Checker.SSER then
             "Online.add_txn: SSER streams must arrive in commit order"
           else
             "Online.add_txn: timestamp modes need commit-order streams");
      Flat_index.set t.seen_ids txn.Txn.id 1;
      t.count <- t.count + 1;
      match txn.Txn.status with
      | Txn.Aborted ->
          Array.iter
            (fun op ->
              match op with
              | Op.Write (k, v) ->
                  Flat_index.Writers.set_aborted t.writers k v txn.Txn.id
              | Op.Read _ -> ())
            txn.Txn.ops;
          Ok_so_far
      | Txn.Committed -> (
          let dup =
            List.find_opt
              (fun (k, v) -> resolve t k v <> Index.Nobody)
              (Txn.final_writes txn @ Txn.intermediate_writes txn)
          in
          match dup with
          | Some (k, v) ->
              poison t
                (Checker.Malformed
                   (Printf.sprintf "duplicate write of %d to x%d by T%d" v k
                      txn.Txn.id))
          | None -> (
              match
                Int_check.check_txn_with
                  ~resolve:(fun _ k v ->
                    resolve_ts t ~count:true ~start_ts:txn.Txn.start_ts k v)
                  txn
              with
              | viol :: _ -> poison t (Checker.Intra viol)
              | [] -> (
                  match
                    if t.level = Checker.SI then divergence_screen t txn
                    else None
                  with
                  | Some v -> poison t v
                  | None -> (
                      try
                        feed_committed t txn;
                        Ok_so_far
                      with Cycle_found v -> poison t v)))))

let sp_feed = Obs.Trace.intern "online/feed"

(* Not [with_span]: the closure it would allocate is the only thing
   between this wrapper and a zero-allocation disabled path. *)
let add_txn t (txn : Txn.t) =
  let t0 = Obs.Trace.enter () in
  let r = add_txn_inner t txn in
  Obs.Trace.exit sp_feed t0;
  r

(* --- snapshot codec ------------------------------------------------ *)

(* Serializes the whole checker state directly — the flat int structures
   go to varints, no history replay.  Structures whose iteration order
   the cycle-witness DFS observes (PK adjacency + order, the Multi cons
   pools, the version-chain vectors) are written verbatim; hash layouts
   are not (unobservable).  A restored checker therefore renders
   byte-identical counterexamples and verdicts for any continuation of
   the stream.  Poisoned checkers are not snapshotted — the persistence
   layer stores their rendered verdict instead, which is all a poisoned
   session can ever produce again. *)

let level_byte = function Checker.SSER -> 0 | Checker.SER -> 1 | Checker.SI -> 2

let level_of_byte = function
  | 0 -> Checker.SSER
  | 1 -> Checker.SER
  | 2 -> Checker.SI
  | b -> Binio_core.fail "unknown level byte %d" b

let ts_byte = function Ts.Ignore -> 0 | Ts.Trust -> 1 | Ts.Verify -> 2

let ts_of_byte = function
  | 0 -> Ts.Ignore
  | 1 -> Ts.Trust
  | 2 -> Ts.Verify
  | b -> Binio_core.fail "unknown ts mode byte %d" b

let encode buf t =
  if t.poisoned <> None then
    invalid_arg "Online.encode: poisoned checkers are not snapshotted";
  Buffer.add_char buf (Char.chr (level_byte t.level));
  Binio_core.add_varint buf t.skew;
  Buffer.add_char buf (Char.chr (ts_byte t.ts_mode));
  Binio_core.add_uvarint buf t.graph.Grow.capacity;
  Binio_core.add_uvarint buf t.graph.Grow.edge_count;
  Pearce_kelly.encode buf t.graph.Grow.pk;
  Flat_index.encode buf t.graph.Grow.labels;
  Binio_core.add_uvarint buf t.next_vertex;
  Int_vec.encode buf t.vertex_txn;
  Flat_index.encode buf t.txn_vertex;
  Flat_index.Writers.encode buf t.writers;
  Flat_index.Multi.encode buf t.readers;
  Flat_index.Multi.encode buf t.overwriters;
  Flat_index.Pairs.encode buf t.extender;
  Flat_index.encode buf t.session_last;
  Flat_index.encode buf t.seen_ids;
  Int_vec.encode buf t.commit_ts;
  Int_vec.encode buf t.commit_helper;
  Binio_core.add_varint buf t.last_commit;
  Binio_core.add_uvarint buf t.count;
  Flat_index.encode buf t.chain_head;
  Int_vec.encode buf t.ch_commit;
  Int_vec.encode buf t.ch_writer;
  Int_vec.encode buf t.ch_value;
  Int_vec.encode buf t.ch_next;
  Binio_core.add_string buf (Bytes.unsafe_to_string t.ts_slow);
  Binio_core.add_uvarint buf t.ts_fast;
  Binio_core.add_uvarint buf t.ts_mismatched

let decode r =
  let level = level_of_byte (Binio_core.read_byte r) in
  let skew = Binio_core.read_varint r in
  let ts_mode = ts_of_byte (Binio_core.read_byte r) in
  let capacity = Binio_core.read_uvarint r in
  let edge_count = Binio_core.read_uvarint r in
  let pk = Pearce_kelly.decode r in
  let labels = Flat_index.decode r in
  if Pearce_kelly.n pk > capacity then
    Binio_core.fail "online snapshot: capacity %d below vertex count" capacity;
  let graph = { Grow.pk; capacity; edge_count; labels } in
  let next_vertex = Binio_core.read_uvarint r in
  let vertex_txn = Int_vec.decode r in
  let txn_vertex = Flat_index.decode r in
  let writers = Flat_index.Writers.decode r in
  let readers = Flat_index.Multi.decode r in
  let overwriters = Flat_index.Multi.decode r in
  let extender = Flat_index.Pairs.decode r in
  let session_last = Flat_index.decode r in
  let seen_ids = Flat_index.decode r in
  let commit_ts = Int_vec.decode r in
  let commit_helper = Int_vec.decode r in
  let last_commit = Binio_core.read_varint r in
  let count = Binio_core.read_uvarint r in
  let chain_head = Flat_index.decode r in
  let ch_commit = Int_vec.decode r in
  let ch_writer = Int_vec.decode r in
  let ch_value = Int_vec.decode r in
  let ch_next = Int_vec.decode r in
  let ts_slow = Bytes.of_string (Binio_core.read_string r) in
  let ts_fast = Binio_core.read_uvarint r in
  let ts_mismatched = Binio_core.read_uvarint r in
  if next_vertex <> Int_vec.length vertex_txn then
    Binio_core.fail "online snapshot: vertex map length %d <> next vertex %d"
      (Int_vec.length vertex_txn) next_vertex;
  {
    level;
    skew;
    ts_mode;
    graph;
    next_vertex;
    vertex_txn;
    txn_vertex;
    writers;
    readers;
    overwriters;
    extender;
    session_last;
    seen_ids;
    commit_ts;
    commit_helper;
    last_commit;
    count;
    poisoned = None;
    chain_head;
    ch_commit;
    ch_writer;
    ch_value;
    ch_next;
    ts_slow;
    ts_fast;
    ts_mismatched;
  }

let check_stream ?skew ?ts ~level ~num_keys txns =
  let t = create ?skew ?ts ~level ~num_keys () in
  let rec go n = function
    | [] -> Ok n
    | txn :: rest -> (
        match add_txn t txn with
        | Ok_so_far -> go (n + 1) rest
        | Violation v -> Error v)
  in
  go 0 txns
