lib/graph/digraph.mli:
