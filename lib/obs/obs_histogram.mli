(** Log2-bucketed histogram of non-negative integer samples
    (nanoseconds, allocated words, queue depths) — the one histogram
    implementation behind the service metrics and the Prometheus
    exporter.

    Bucket [i] counts samples [v] with [2^i <= v < 2^(i+1)] (bucket 0
    also takes [v <= 1]); 63 buckets cover the whole int range, so
    {!observe} never drops a sample.  Percentiles are bucket upper
    edges: exact to within a factor of two, which is all a health
    endpoint needs.

    Thread-safe: {!observe} and {!snapshot} serialize on an internal
    mutex, and readers go through {!snapshot} — one consistent
    (count, sum, max, buckets) quadruple, never a mean computed from a
    count and a sum read at different times. *)

type t

val num_buckets : int
(** 63. *)

val create : unit -> t

val observe : t -> int -> unit
(** Record one sample; negative values count into bucket 0. *)

val bucket_of : int -> int
(** Index of the bucket a value falls into (exposed for tests and the
    exporter's bucket edges). *)

val upper_edge : int -> int
(** Inclusive upper edge of bucket [i]: [2^(i+1) - 1]. *)

(** {1 Consistent reads} *)

type snapshot = {
  s_count : int;
  s_sum : float;
  s_max : int;
  s_buckets : int array;  (** a private copy, length {!num_buckets} *)
}

val snapshot : t -> snapshot
(** One mutex-guarded copy of the whole state. *)

val mean_of : snapshot -> float
val percentile_of : snapshot -> float -> int

(** {1 Convenience one-shot reads} (each takes its own snapshot) *)

val count : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0..100]: the upper edge of the bucket
    holding the p-th percentile sample, clamped to the observed max;
    [0] when empty. *)
