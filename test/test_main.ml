let () =
  Alcotest.run "mtc"
    [
      ("common", Test_common.suite);
      ("pool", Test_pool.suite);
      ("graph", Test_graph.suite);
      ("history", Test_history.suite);
      ("core", Test_core.suite);
      ("flat", Test_flat.suite);
      ("weak", Test_weak.suite);
      ("lwt", Test_lwt.suite);
      ("sat", Test_sat.suite);
      ("db", Test_db.suite);
      ("workload", Test_workload.suite);
      ("runner", Test_runner.suite);
      ("baselines", Test_baselines.suite);
      ("oracle", Test_oracle.suite);
      ("online", Test_online.suite);
      ("gc", Test_gc.suite);
      ("pk", Test_pk.suite);
      ("service", Test_service.suite);
      ("extra", Test_extra.suite);
      ("properties", Test_properties.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("ts", Test_ts.suite);
    ("persist", Test_persist.suite);
    ]
