lib/graph/reach.ml: Array Bytes Char Digraph List Queue Scc
