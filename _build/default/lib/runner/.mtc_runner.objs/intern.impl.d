lib/runner/intern.ml: Hashtbl
