(* The motivating scenario of write skew: a bank enforcing the invariant
   "checking + savings >= 0" per customer, with withdrawals that read both
   accounts and debit one of them.

   Under SNAPSHOT isolation the invariant can break (WRITESKEW, paper
   Figure 5n): two concurrent withdrawals each see enough total balance
   and each debit a different account.  MTC-SER catches exactly this on
   the observed history, while MTC-SI (correctly) accepts it — snapshot
   isolation is working as specified; it is the application that needs
   SERIALIZABLE.

     dune exec examples/bank_audit.exe *)

(* Keys 2c / 2c+1 are customer c's checking and savings accounts. *)
let withdrawal_workload ~customers ~withdrawals ~sessions ~seed =
  let rng = Rng.create seed in
  let arr = Array.make sessions [] in
  for i = 0 to withdrawals - 1 do
    let s = i mod sessions in
    let c = Rng.int rng customers in
    let checking = 2 * c and savings = (2 * c) + 1 in
    (* Read both balances, then debit one: an RRW mini-transaction. *)
    let debit = if Rng.bool rng then checking else savings in
    arr.(s) <- [ Spec.Pread checking; Spec.Pread savings; Spec.Pwrite debit ] :: arr.(s)
  done;
  {
    Spec.name = "bank-withdrawals";
    num_keys = 2 * customers;
    sessions = Array.map List.rev arr;
  }

let audit ~level ~level_name =
  Format.printf "@.== bank running at %s ==@." level_name;
  let spec =
    withdrawal_workload ~customers:5 ~withdrawals:1200 ~sessions:8 ~seed:2024
  in
  let db =
    { Db.level; fault = Fault.No_fault; num_keys = spec.Spec.num_keys; seed = 5 }
  in
  let result = Scheduler.run ~db ~spec () in
  Format.printf "  %s, abort rate %.1f%%@."
    (History.stats result.Scheduler.history)
    (100.0 *. Scheduler.abort_rate result);
  let h = result.Scheduler.history in
  (match Checker.check_si h with
  | Checker.Pass -> print_endline "  MTC-SI  : pass (snapshot semantics hold)"
  | Checker.Fail v ->
      Format.printf "  MTC-SI  : VIOLATION?!@.%s" (Report.render h Checker.SI v));
  match Checker.check_ser h with
  | Checker.Pass ->
      print_endline "  MTC-SER : pass — no withdrawal anomaly possible"
  | Checker.Fail v ->
      print_endline
        "  MTC-SER : VIOLATION — two withdrawals ran on the same snapshot;";
      print_endline
        "            the balance invariant is NOT protected at this level:";
      print_string (Report.render h Checker.SER v)

let () =
  print_endline
    "Auditing a withdrawal service: invariant checking+savings >= 0.";
  (* Snapshot isolation: write skew expected sooner or later. *)
  audit ~level:Isolation.Snapshot ~level_name:"SNAPSHOT (repeatable read)";
  (* Serializable (SSI): the engine aborts one of the dangerous pair. *)
  audit ~level:Isolation.Serializable ~level_name:"SERIALIZABLE (SSI)"
