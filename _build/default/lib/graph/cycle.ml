(* Iterative three-colour DFS with an explicit stack (histories can have
   hundreds of thousands of transactions, so no native recursion).  When a
   back edge (u -> v with v grey) is found, walking the parent chain from u
   up to v yields a simple cycle. *)

type colour = White | Grey | Black

let find (type lab) (g : lab Digraph.t) =
  let n = Digraph.n g in
  let colour = Array.make n White in
  let parent = Array.make n (-1) in
  let parent_lab : lab option array = Array.make n None in
  let exception Found of (int * lab * int) list in
  let build_cycle u lab v =
    (* u -lab-> v closes the cycle; walk parents from u back to v. *)
    let rec walk acc w =
      if w = v then acc
      else
        match parent_lab.(w) with
        | Some l -> walk ((parent.(w), l, w) :: acc) parent.(w)
        | None -> acc
    in
    walk [ (u, lab, v) ] u
  in
  let visit root =
    let stack = ref [ (root, ref (Digraph.succ g root)) ] in
    colour.(root) <- Grey;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (u, rest) :: tail -> (
          match !rest with
          | [] ->
              colour.(u) <- Black;
              stack := tail
          | (v, lab) :: more -> (
              rest := more;
              match colour.(v) with
              | Black -> ()
              | Grey -> raise (Found (build_cycle u lab v))
              | White ->
                  colour.(v) <- Grey;
                  parent.(v) <- u;
                  parent_lab.(v) <- Some lab;
                  stack := (v, ref (Digraph.succ g v)) :: !stack))
    done
  in
  try
    for u = 0 to n - 1 do
      if colour.(u) = White then visit u
    done;
    None
  with Found cycle -> Some cycle

let is_acyclic g = find g = None

let shortest_through (type lab) (g : lab Digraph.t) v =
  let n = Digraph.n g in
  let parent = Array.make n (-1) in
  let parent_lab : lab option array = Array.make n None in
  let visited = Array.make n false in
  let q = Queue.create () in
  let exception Found of (int * lab * int) in
  (* BFS outwards from [v]; the first edge returning to [v] closes a
     shortest cycle through it. *)
  let relax u =
    List.iter
      (fun (w, lab) ->
        if w = v then raise (Found (u, lab, v))
        else if not visited.(w) then begin
          visited.(w) <- true;
          parent.(w) <- u;
          parent_lab.(w) <- Some lab;
          Queue.add w q
        end)
      (Digraph.succ g u)
  in
  try
    relax v;
    while not (Queue.is_empty q) do
      relax (Queue.pop q)
    done;
    None
  with Found ((u, _, _) as last) ->
    let rec walk acc w =
      if w = v then acc
      else
        match parent_lab.(w) with
        | Some l -> walk ((parent.(w), l, w) :: acc) parent.(w)
        | None -> acc
    in
    Some (walk [ last ] u)
