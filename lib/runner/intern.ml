(* Ids are handed out densely from 0 (the empty list), so the table is a
   growable array rather than an int-keyed hashtable: [put] is a store +
   bump, [get] a bounds-checked load. *)
type t = { mutable len : int; mutable slots : int list array }

let empty_id = 0

let create () = { len = 1; slots = Array.make 1024 [] }

let put t l =
  let id = t.len in
  if id = Array.length t.slots then begin
    let slots = Array.make (2 * id) [] in
    Array.blit t.slots 0 slots 0 id;
    t.slots <- slots
  end;
  t.slots.(id) <- l;
  t.len <- id + 1;
  id

let get t id =
  if id < 0 || id >= t.len then raise Not_found;
  t.slots.(id)
