let sort (g : _ Digraph.t) =
  let n = Digraph.n g in
  let indeg = Array.make n 0 in
  Digraph.iter_edges g (fun _ _ v -> indeg.(v) <- indeg.(v) + 1);
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    incr count;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v q)
      (Digraph.succ_vertices g u)
  done;
  if !count = n then Some (List.rev !order) else None

let is_order g pos =
  Digraph.fold_edges g (fun ok u _ v -> ok && pos.(u) < pos.(v)) true
