(* Compact binary primitives shared by the history codecs, the service
   wire protocol and the persistence layer: LEB128 varints (zigzag for
   signed values) and length-prefixed strings.  Encoding appends to a
   caller-owned [Buffer.t]; decoding reads from an immutable source
   through a mutable cursor and raises [Decode_error] on malformed or
   truncated input — callers at the protocol boundary catch it and turn
   it into a [result]. *)

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

(* A byte source the reader cursors over: an in-heap string (the wire
   protocol's frame payloads) or an mmap'd file (the zero-copy history
   ingest path).  The map variant never copies the file into the OCaml
   heap — readers index the page cache directly, and several domains
   may cursor over disjoint ranges of the same map concurrently. *)
module Source = struct
  type bigstring =
    (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = Str of string | Map of bigstring

  let of_string s = Str s

  let length = function
    | Str s -> String.length s
    | Map m -> Bigarray.Array1.dim m

  (* Callers bounds-check [pos] before calling. *)
  let get t i =
    match t with
    | Str s -> String.unsafe_get s i
    | Map m -> Bigarray.Array1.unsafe_get m i

  let sub_string t pos len =
    match t with
    | Str s -> String.sub s pos len
    | Map m ->
        let b = Bytes.create len in
        for i = 0 to len - 1 do
          Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get m (pos + i))
        done;
        Bytes.unsafe_to_string b

  let map_file path =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        (* An empty mapping is an error on Linux; an empty source is
           not. *)
        if size = 0 then Str ""
        else
          Map
            (Bigarray.array1_of_genarray
               (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |])))
end

type reader = { src : Source.t; mutable pos : int }

let reader ?(pos = 0) src = { src = Source.of_string src; pos }
let reader_of_source ?(pos = 0) src = { src; pos }
let remaining r = Source.length r.src - r.pos
let at_end r = remaining r <= 0
let pos r = r.pos
let seek r pos = r.pos <- pos

let read_byte r =
  if r.pos >= Source.length r.src then
    fail "truncated input at byte %d" r.pos;
  let b = Char.code (Source.get r.src r.pos) in
  r.pos <- r.pos + 1;
  b

let read_bytes r len =
  if len < 0 || len > remaining r then
    fail "%d raw bytes overrun input (%d left)" len (remaining r);
  let s = Source.sub_string r.src r.pos len in
  r.pos <- r.pos + len;
  s

(* Unsigned LEB128 over the full 63-bit (plus sign bit) native int: the
   writer shifts with [lsr], so negative ints terminate after at most 10
   groups and round-trip bit-exactly. *)
let add_uvarint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let read_uvarint r =
  let result = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !shift >= 63 then fail "varint longer than 63 bits at byte %d" r.pos;
    let b = read_byte r in
    result := !result lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  !result

(* Zigzag: small magnitudes of either sign stay short. *)
let add_varint buf n = add_uvarint buf ((n lsl 1) lxor (n asr 62))

let read_varint r =
  let u = read_uvarint r in
  (u lsr 1) lxor (- (u land 1))

let add_string buf s =
  add_uvarint buf (String.length s);
  Buffer.add_string buf s

let read_string r =
  let len = read_uvarint r in
  if len < 0 || len > remaining r then
    fail "string of %d bytes overruns input (%d left)" len (remaining r);
  let s = Source.sub_string r.src r.pos len in
  r.pos <- r.pos + len;
  s
