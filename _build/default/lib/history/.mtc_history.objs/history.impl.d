lib/history/history.ml: Array Format Hashtbl List Mini Op Printf Txn
