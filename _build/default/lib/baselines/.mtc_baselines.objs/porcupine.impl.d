lib/baselines/porcupine.ml: Array Hashtbl List Lwt Stdlib String
