(** A conflict-driven clause-learning SAT solver with a pluggable theory —
    our "MonoSAT-lite".

    Implements the standard machinery: two-watched-literal propagation,
    first-UIP conflict analysis with clause learning, VSIDS-style
    activities with decay, phase saving and geometric restarts.

    The theory hook is invoked on every assignment; a theory conflict is
    reported as the set of currently-true literals whose conjunction is
    inconsistent (for the acyclicity theory: the literals labelling the
    edges of a cycle), which the solver turns into a conflict clause and
    analyzes as usual.  This is exactly how the Cobra and PolySI baselines
    encode "polygraph has an acyclic compatible choice" (paper
    Section V-B). *)

type theory = {
  on_assign : Lit.t -> Lit.t list option;
      (** [Some lits] signals a theory conflict; [lits] must all be
          currently true and include the literal just assigned *)
  on_unassign : Lit.t -> unit;
      (** called in reverse assignment order during backjumping *)
}

type t

val create : ?theory:theory -> nvars:int -> unit -> t

val add_clause : t -> Lit.t list -> unit
(** Add a clause (call before {!solve}).  The empty clause makes the
    instance trivially unsatisfiable. *)

type outcome = Sat | Unsat

val solve : t -> outcome

val value : t -> Lit.var -> bool
(** Model value after [Sat].
    @raise Invalid_argument before a successful solve. *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
