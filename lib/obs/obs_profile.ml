type phase = {
  p_name : string;
  p_total_ns : int;
  p_count : int;
  p_serial_ns : int;
  p_subs : (string * int * int) list;
}

let phase_of name =
  match String.index_opt name '/' with
  | Some i -> String.sub name 0 i
  | None -> name

(* Top-level spans per (domain, phase): sweep t0-ascending (dur
   descending on ties), keeping a stack of enclosing end-times.  An
   event with a live enclosing interval is nested — its time is already
   inside its parent's and must not count again. *)
let top_level_mask (evs : Obs_trace.event array) =
  let n = Array.length evs in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let ea = evs.(a) and eb = evs.(b) in
      if ea.Obs_trace.ev_t0 <> eb.Obs_trace.ev_t0 then
        compare ea.Obs_trace.ev_t0 eb.Obs_trace.ev_t0
      else compare eb.Obs_trace.ev_dur ea.Obs_trace.ev_dur)
    order;
  let top = Array.make n false in
  let stack = ref [] in
  Array.iter
    (fun i ->
      let e = evs.(i) in
      let e_end = e.Obs_trace.ev_t0 + e.Obs_trace.ev_dur in
      let rec pop () =
        match !stack with
        | top_end :: rest when top_end < e_end ->
            stack := rest;
            pop ()
        | _ -> ()
      in
      pop ();
      top.(i) <- !stack = [];
      stack := e_end :: !stack)
    order;
  top

(* Merged busy intervals of every domain except 0, sorted by start —
   the reference set for the serial-fraction column: domain-0 time not
   overlapping any of these intervals is time when no worker was doing
   anything, i.e. genuinely serial. *)
let busy_elsewhere (events : Obs_trace.event list) =
  let ivs =
    List.filter_map
      (fun (e : Obs_trace.event) ->
        if e.ev_dom <> 0 then Some (e.ev_t0, e.ev_t0 + e.ev_dur) else None)
      events
    |> List.sort compare
  in
  let rec merge = function
    | (a0, a1) :: (b0, b1) :: rest when b0 <= a1 ->
        merge ((a0, Stdlib.max a1 b1) :: rest)
    | iv :: rest -> iv :: merge rest
    | [] -> []
  in
  Array.of_list (merge ivs)

(* Length of [a, b) covered by the merged interval set. *)
let covered merged a b =
  let n = Array.length merged in
  let total = ref 0 in
  (* First interval that could reach past [a]. *)
  let lo = ref 0 and hi = ref (n - 1) and first = ref n in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let _, m1 = merged.(mid) in
    if m1 > a then begin
      first := mid;
      hi := mid - 1
    end
    else lo := mid + 1
  done;
  let i = ref !first in
  let continue = ref true in
  while !continue && !i < n do
    let i0, i1 = merged.(!i) in
    if i0 >= b then continue := false
    else begin
      total := !total + (Stdlib.min b i1 - Stdlib.max a i0);
      incr i
    end
  done;
  !total

let phases (events : Obs_trace.event list) =
  (* Group by (domain, phase) for the containment sweep; remember phase
     and span-name first-appearance order from the time-sorted input. *)
  let groups : (int * string, Obs_trace.event list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let phase_order = ref [] in
  let sub_order : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Obs_trace.event) ->
      let ph = phase_of e.ev_name in
      if not (List.mem ph !phase_order) then
        phase_order := !phase_order @ [ ph ];
      let subs =
        match Hashtbl.find_opt sub_order ph with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace sub_order ph l;
            l
      in
      if not (List.mem e.ev_name !subs) then subs := !subs @ [ e.ev_name ];
      let key = (e.ev_dom, ph) in
      match Hashtbl.find_opt groups key with
      | Some l -> l := e :: !l
      | None -> Hashtbl.replace groups key (ref [ e ]))
    events;
  (* Per-phase totals over top-level spans; domain-0 top-level time not
     covered by any other domain's busy interval is the phase's serial
     share. *)
  let elsewhere = busy_elsewhere events in
  let totals : (string, int ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let total_of ph =
    match Hashtbl.find_opt totals ph with
    | Some p -> p
    | None ->
        let p = (ref 0, ref 0, ref 0) in
        Hashtbl.replace totals ph p;
        p
  in
  Hashtbl.iter
    (fun (dom, ph) evs_ref ->
      let evs = Array.of_list !evs_ref in
      let top = top_level_mask evs in
      let t, c, ser = total_of ph in
      Array.iteri
        (fun i e ->
          if top.(i) then begin
            t := !t + e.Obs_trace.ev_dur;
            incr c;
            if dom = 0 then
              ser :=
                !ser + e.Obs_trace.ev_dur
                - covered elsewhere e.Obs_trace.ev_t0
                    (e.Obs_trace.ev_t0 + e.Obs_trace.ev_dur)
          end)
        evs)
    groups;
  (* Per-name sub-totals over every event, nested included. *)
  let by_name : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Obs_trace.event) ->
      let t, c =
        match Hashtbl.find_opt by_name e.ev_name with
        | Some p -> p
        | None ->
            let p = (ref 0, ref 0) in
            Hashtbl.replace by_name e.ev_name p;
            p
      in
      t := !t + e.ev_dur;
      incr c)
    events;
  List.map
    (fun ph ->
      let t, c, ser = total_of ph in
      let subs =
        match Hashtbl.find_opt sub_order ph with
        | None -> []
        | Some l ->
            List.map
              (fun name ->
                let t, c = Hashtbl.find by_name name in
                (name, !t, !c))
              !l
      in
      {
        p_name = ph;
        p_total_ns = !t;
        p_count = !c;
        p_serial_ns = !ser;
        p_subs = subs;
      })
    !phase_order

let phase_sum_ns events =
  List.fold_left (fun acc p -> acc + p.p_total_ns) 0 (phases events)

let ms ns = float_of_int ns /. 1e6

let render ~wall_ns events =
  let ps = phases events in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-24s %12s %8s %7s %8s\n" "phase" "total" "count" "wall%"
       "serial%");
  let pct ns =
    if wall_ns <= 0 then 0.0
    else 100.0 *. float_of_int ns /. float_of_int wall_ns
  in
  List.iter
    (fun p ->
      let serial_pct =
        if p.p_total_ns <= 0 then 0.0
        else 100.0 *. float_of_int p.p_serial_ns /. float_of_int p.p_total_ns
      in
      Buffer.add_string b
        (Printf.sprintf "%-24s %9.3f ms %8d %6.1f%% %7.1f%%\n" p.p_name
           (ms p.p_total_ns) p.p_count (pct p.p_total_ns) serial_pct);
      (* A phase with a single span name equal to the phase itself needs
         no sub-row. *)
      (match p.p_subs with
      | [ (name, _, _) ] when name = p.p_name -> ()
      | subs ->
          List.iter
            (fun (name, t, c) ->
              Buffer.add_string b
                (Printf.sprintf "  %-22s %9.3f ms %8d\n" name (ms t) c))
            subs))
    ps;
  let sum = List.fold_left (fun acc p -> acc + p.p_total_ns) 0 ps in
  let serial = List.fold_left (fun acc p -> acc + p.p_serial_ns) 0 ps in
  Buffer.add_string b
    (Printf.sprintf "phases sum %.3f ms = %.1f%% of wall %.3f ms\n" (ms sum)
       (pct sum) (ms wall_ns));
  Buffer.add_string b
    (Printf.sprintf "serial (domain 0 only) %.3f ms = %.1f%% of wall\n"
       (ms serial) (pct serial));
  Buffer.contents b
