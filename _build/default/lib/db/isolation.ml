type level = Read_committed | Snapshot | Serializable | Strict_serializable

let name = function
  | Read_committed -> "read-committed"
  | Snapshot -> "snapshot"
  | Serializable -> "serializable"
  | Strict_serializable -> "strict-serializable"

let of_string = function
  | "read-committed" | "rc" -> Some Read_committed
  | "snapshot" | "si" -> Some Snapshot
  | "serializable" | "ser" -> Some Serializable
  | "strict-serializable" | "sser" -> Some Strict_serializable
  | _ -> None

let claimed_level = function
  | Read_committed | Snapshot -> Checker.SI
  | Serializable -> Checker.SER
  | Strict_serializable -> Checker.SSER
