test/test_online.ml: Alcotest Array Checker Db Deps Fault History Int_check Isolation List Mt_gen Online Op Printf Scheduler Txn
