type t = { mutable data : int array; mutable len : int }

let create capacity = { data = Array.make (Stdlib.max 4 capacity) 0; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let d = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 d 0 t.len;
    t.data <- d
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i = t.data.(i)
let set t i x = t.data.(i) <- x
let clear t = t.len <- 0

let pop t =
  t.len <- t.len - 1;
  t.data.(t.len)
let data t = t.data
