(* Service metrics as a thin naming layer over [Obs.Metrics]: each
   instance owns a registry of typed instruments, which is what the
   [--metrics-port] HTTP endpoint serializes (Prometheus text) and what
   [to_json] summarizes for the [Stats] frame.  The histograms snapshot
   consistently, so a mean is never computed from a count and a sum read
   on either side of a concurrent [feed]. *)

type t = {
  reg : Obs.Metrics.registry;
  created_at : float;
  connections : Obs.Counter.t;
  sessions_opened : Obs.Counter.t;
  sessions_closed : Obs.Counter.t;
  txns_fed : Obs.Counter.t;
  syncs : Obs.Counter.t;
  violations : Obs.Counter.t;
  frames_in : Obs.Counter.t;
  frames_out : Obs.Counter.t;
  throttles : Obs.Counter.t;
  protocol_errors : Obs.Counter.t;
  queue_high_water : Obs.Gauge.t;
  wal_bytes : Obs.Counter.t;
  wal_fsyncs : Obs.Counter.t;
  snapshots : Obs.Counter.t;
  replay_frames : Obs.Counter.t;
  replay_ms : Obs.Gauge.t;
  open_conns : Obs.Gauge.t;
  epoll_wakeups : Obs.Counter.t;
  gc_runs : Obs.Counter.t;
  gc_reclaimed_words : Obs.Counter.t;
  live_words : Obs.Gauge.t;
  gc_last_reclaimed : Obs.Gauge.t;
  horizon_pinned : Obs.Gauge.t;
  pin_fences : Obs.Counter.t;
  feed_ns : Obs.Histogram.t;
  feed_words : Obs.Histogram.t;
  gc_ns : Obs.Histogram.t;
}

let create () =
  let reg = Obs.Metrics.create () in
  (* sequential lets: record fields evaluate in unspecified order, and
     registration order is the exposition order *)
  let c help name = Obs.Metrics.counter reg ~help name in
  let connections = c "Client connections accepted" "mtc_connections_total" in
  let sessions_opened =
    c "Checking sessions opened" "mtc_sessions_opened_total"
  in
  let sessions_closed =
    c "Checking sessions closed" "mtc_sessions_closed_total"
  in
  let txns_fed =
    c "Transactions fed into online checkers" "mtc_txns_fed_total"
  in
  let syncs = c "Sync frames served" "mtc_syncs_total" in
  let violations = c "Isolation violations reported" "mtc_violations_total" in
  let frames_in = c "Frames received" "mtc_frames_in_total" in
  let frames_out = c "Frames sent" "mtc_frames_out_total" in
  let throttles = c "Throttle frames sent" "mtc_throttles_total" in
  let protocol_errors = c "Protocol errors" "mtc_protocol_errors_total" in
  let queue_high_water =
    Obs.Metrics.gauge reg ~help:"High-water mark of any session ingress queue"
      "mtc_queue_high_water"
  in
  let wal_bytes = c "Bytes appended to write-ahead logs" "mtc_wal_bytes_total" in
  let wal_fsyncs = c "WAL fsync calls" "mtc_wal_fsyncs_total" in
  let snapshots = c "Shard snapshots written" "mtc_snapshots_total" in
  let replay_frames =
    c "WAL records replayed at startup" "mtc_replay_frames_total"
  in
  let replay_ms =
    Obs.Metrics.gauge reg ~help:"Startup restore time (milliseconds)"
      "mtc_replay_ms"
  in
  let open_conns =
    Obs.Metrics.gauge reg ~help:"Currently open client connections"
      "mtc_open_conns"
  in
  let epoll_wakeups =
    c "Event-loop wakeups that delivered readiness events"
      "mtc_epoll_wakeups_total"
  in
  let gc_runs =
    c "Watermark compactions across all sessions" "mtc_gc_runs_total"
  in
  let gc_reclaimed_words =
    c "Words reclaimed by watermark compactions" "mtc_gc_reclaimed_words_total"
  in
  let live_words =
    Obs.Metrics.gauge reg
      ~help:"Live words retained by all online checkers (estimate)"
      "mtc_live_words"
  in
  let gc_last_reclaimed =
    Obs.Metrics.gauge reg
      ~help:"Words reclaimed by the most recent compaction"
      "mtc_gc_last_reclaimed_words"
  in
  let horizon_pinned =
    Obs.Metrics.gauge reg
      ~help:"Sessions currently flagged by the horizon-pin detector"
      "mtc_horizon_pinned_sessions"
  in
  let pin_fences =
    c "Sessions force-closed by the horizon-pin fence" "mtc_pin_fences_total"
  in
  let feed_ns =
    Obs.Metrics.histogram reg ~help:"Per-feed processing time (nanoseconds)"
      "mtc_feed_ns"
  in
  let feed_words =
    Obs.Metrics.histogram reg ~help:"Per-feed allocated minor-heap words"
      "mtc_feed_words"
  in
  let gc_ns =
    Obs.Metrics.histogram reg
      ~help:"Watermark-compaction pause (nanoseconds)" "mtc_gc_ns"
  in
  {
    reg;
    created_at = Unix.gettimeofday ();
    connections;
    sessions_opened;
    sessions_closed;
    txns_fed;
    syncs;
    violations;
    frames_in;
    frames_out;
    throttles;
    protocol_errors;
    queue_high_water;
    wal_bytes;
    wal_fsyncs;
    snapshots;
    replay_frames;
    replay_ms;
    open_conns;
    epoll_wakeups;
    gc_runs;
    gc_reclaimed_words;
    live_words;
    gc_last_reclaimed;
    horizon_pinned;
    pin_fences;
    feed_ns;
    feed_words;
    gc_ns;
  }

let registry t = t.reg
let uptime_s t = Unix.gettimeofday () -. t.created_at

let connection t = Obs.Counter.incr t.connections
let session_opened t = Obs.Counter.incr t.sessions_opened
let session_closed t = Obs.Counter.incr t.sessions_closed
let frame_in t = Obs.Counter.incr t.frames_in
let frame_out t = Obs.Counter.incr t.frames_out
let sync t = Obs.Counter.incr t.syncs
let violation t = Obs.Counter.incr t.violations
let throttle t = Obs.Counter.incr t.throttles
let protocol_error t = Obs.Counter.incr t.protocol_errors

let feed t ~ns ~words =
  Obs.Counter.incr t.txns_fed;
  Obs.Histogram.observe t.feed_ns ns;
  Obs.Histogram.observe t.feed_words words

let queue_depth t depth = Obs.Gauge.max_update t.queue_high_water depth
let wal_write t ~bytes = Obs.Counter.add t.wal_bytes bytes
let wal_fsync t = Obs.Counter.incr t.wal_fsyncs
let snapshot t = Obs.Counter.incr t.snapshots

let replay t ~frames ~ms =
  Obs.Counter.add t.replay_frames frames;
  Obs.Gauge.set t.replay_ms (int_of_float (Float.round ms))

let open_conns t n = Obs.Gauge.set t.open_conns n
let epoll_wakeup t = Obs.Counter.incr t.epoll_wakeups

let gc_run t ~ns ~reclaimed =
  Obs.Counter.incr t.gc_runs;
  Obs.Counter.add t.gc_reclaimed_words reclaimed;
  Obs.Gauge.set t.gc_last_reclaimed reclaimed;
  Obs.Histogram.observe t.gc_ns ns

let live_words t n = Obs.Gauge.set t.live_words n
let pinned_sessions t n = Obs.Gauge.set t.horizon_pinned n
let pin_fence t = Obs.Counter.incr t.pin_fences

let txns_fed t = Obs.Counter.get t.txns_fed
let violations t = Obs.Counter.get t.violations
let throttles t = Obs.Counter.get t.throttles
let sessions_opened t = Obs.Counter.get t.sessions_opened
let queue_high_water t = Obs.Gauge.get t.queue_high_water
let feed_p50_ns t = Obs.Histogram.percentile t.feed_ns 50.0
let feed_p99_ns t = Obs.Histogram.percentile t.feed_ns 99.0
let feed_words_mean t = Obs.Histogram.mean t.feed_words
let wal_bytes t = Obs.Counter.get t.wal_bytes
let wal_fsyncs t = Obs.Counter.get t.wal_fsyncs
let snapshots t = Obs.Counter.get t.snapshots
let replay_frames t = Obs.Counter.get t.replay_frames
let open_conns_now t = Obs.Gauge.get t.open_conns
let epoll_wakeups t = Obs.Counter.get t.epoll_wakeups
let gc_runs t = Obs.Counter.get t.gc_runs
let gc_reclaimed_words t = Obs.Counter.get t.gc_reclaimed_words
let live_words_now t = Obs.Gauge.get t.live_words
let gc_p99_ns t = Obs.Histogram.percentile t.gc_ns 99.0
let pinned_sessions_now t = Obs.Gauge.get t.horizon_pinned
let pin_fences t = Obs.Counter.get t.pin_fences
let feed_words_p50 t = Obs.Histogram.percentile t.feed_words 50.0
let feed_words_p99 t = Obs.Histogram.percentile t.feed_words 99.0

let to_json t =
  let ns = Obs.Histogram.snapshot t.feed_ns in
  let words = Obs.Histogram.snapshot t.feed_words in
  let gcns = Obs.Histogram.snapshot t.gc_ns in
  Printf.sprintf
    "{\"uptime_s\":%.3f,\"connections\":%d,\"sessions_opened\":%d,\
     \"sessions_closed\":%d,\"txns_fed\":%d,\"syncs\":%d,\
     \"violations\":%d,\"frames_in\":%d,\"frames_out\":%d,\
     \"throttles\":%d,\"protocol_errors\":%d,\"queue_high_water\":%d,\
     \"wal_bytes\":%d,\"wal_fsyncs\":%d,\"snapshots\":%d,\
     \"replay_frames\":%d,\"replay_ms\":%d,\"open_conns\":%d,\
     \"epoll_wakeups\":%d,\"gc_runs\":%d,\"gc_reclaimed_words\":%d,\
     \"live_words\":%d,\"gc_last_reclaimed_words\":%d,\
     \"horizon_pinned_sessions\":%d,\"pin_fences\":%d,\
     \"feed_ns\":{\"count\":%d,\"mean\":%.0f,\"p50\":%d,\"p99\":%d,\
     \"max\":%d},\
     \"feed_words\":{\"count\":%d,\"mean\":%.0f,\"p50\":%d,\"p99\":%d,\
     \"max\":%d},\
     \"gc_ns\":{\"count\":%d,\"mean\":%.0f,\"p50\":%d,\"p99\":%d,\
     \"max\":%d}}"
    (uptime_s t)
    (Obs.Counter.get t.connections)
    (Obs.Counter.get t.sessions_opened)
    (Obs.Counter.get t.sessions_closed)
    (Obs.Counter.get t.txns_fed)
    (Obs.Counter.get t.syncs)
    (Obs.Counter.get t.violations)
    (Obs.Counter.get t.frames_in)
    (Obs.Counter.get t.frames_out)
    (Obs.Counter.get t.throttles)
    (Obs.Counter.get t.protocol_errors)
    (Obs.Gauge.get t.queue_high_water)
    (Obs.Counter.get t.wal_bytes)
    (Obs.Counter.get t.wal_fsyncs)
    (Obs.Counter.get t.snapshots)
    (Obs.Counter.get t.replay_frames)
    (Obs.Gauge.get t.replay_ms)
    (Obs.Gauge.get t.open_conns)
    (Obs.Counter.get t.epoll_wakeups)
    (Obs.Counter.get t.gc_runs)
    (Obs.Counter.get t.gc_reclaimed_words)
    (Obs.Gauge.get t.live_words)
    (Obs.Gauge.get t.gc_last_reclaimed)
    (Obs.Gauge.get t.horizon_pinned)
    (Obs.Counter.get t.pin_fences)
    ns.Obs.Histogram.s_count
    (Obs.Histogram.mean_of ns)
    (Obs.Histogram.percentile_of ns 50.0)
    (Obs.Histogram.percentile_of ns 99.0)
    ns.Obs.Histogram.s_max words.Obs.Histogram.s_count
    (Obs.Histogram.mean_of words)
    (Obs.Histogram.percentile_of words 50.0)
    (Obs.Histogram.percentile_of words 99.0)
    words.Obs.Histogram.s_max gcns.Obs.Histogram.s_count
    (Obs.Histogram.mean_of gcns)
    (Obs.Histogram.percentile_of gcns 50.0)
    (Obs.Histogram.percentile_of gcns 99.0)
    gcns.Obs.Histogram.s_max

(* The process-wide instance `mtc serve` reports from; embedders can
   create their own. *)
let global = create ()
