(* Ablations of the design choices DESIGN.md calls out:

   1. SSER real-time encoding: the paper's Θ(n²) pairwise RT edges vs our
      O(n log n) helper-chain sweep (Section IV-C/IV-D discussion).
   2. CHECKSI's early DIVERGENCE screen (Algorithm 1 line 2): detection
      latency with the screen vs relying on the composed-graph cycle
      search alone (on divergent histories the screen answers first;
      correctness is unaffected because divergence also shows up as an
      RW-RW cycle at SER).
   3. Cobra's constraint pruning on vs off: how much the reachability
      pruning contributes to the baseline's performance on MT histories
      (paper Section V-B). *)

let run () =
  Bench_util.section "Ablations";

  Bench_util.subsection
    "(1) SSER real-time encoding: naive pairwise vs helper-chain sweep";
  Bench_util.print_table
    ~header:[ "#txns"; "naive RT (ms)"; "sweep RT (ms)"; "speedup" ]
    (Bench_util.par_map
       (fun txns ->
         let r =
           Bench_util.mt_history ~level:Isolation.Strict_serializable
             ~keys:200 ~txns ~seed:601 ()
         in
         let h = r.Scheduler.history in
         let naive =
           Bench_util.time_median (fun () ->
               Checker.check_sser ~rt_mode:Deps.Rt_naive h)
         in
         let sweep =
           Bench_util.time_median (fun () ->
               Checker.check_sser ~rt_mode:Deps.Rt_sweep h)
         in
         [ string_of_int txns; Bench_util.ms naive; Bench_util.ms sweep;
           Printf.sprintf "%.0fx" (naive /. sweep) ])
       (Bench_util.sweep (List.map Bench_util.scale [ 500; 1000; 2000; 4000 ])));

  Bench_util.subsection
    "(2) CHECKSI divergence screen vs full composed-graph check (divergent history)";
  (* A lost-update-prone engine: the screen finds the violation without
     building the composed graph. *)
  let r =
    let spec =
      Targeted.contended ~keys:40 ~txns:(Bench_util.scale 4000) ~seed:602 ()
    in
    let db =
      { Db.level = Isolation.Snapshot; fault = Fault.Lost_update 0.05;
        num_keys = 40; seed = 602 }
    in
    Scheduler.run ~db ~spec ()
  in
  let h = r.Scheduler.history in
  let with_screen = Bench_util.time_median (fun () -> Checker.check_si h) in
  (* Without the screen, the same violation is still caught (as an RW-RW
     cycle) by the SER check over the same dependency graph. *)
  let without_screen = Bench_util.time_median (fun () -> Checker.check_ser h) in
  Bench_util.print_table
    ~header:[ "variant"; "time (ms)"; "verdict" ]
    [
      [ "divergence screen first (CHECKSI)"; Bench_util.ms with_screen;
        Bench_util.verdict_str (Checker.passes (Checker.check_si h)) ];
      [ "cycle search only (CHECKSER oracle)"; Bench_util.ms without_screen;
        Bench_util.verdict_str (Checker.passes (Checker.check_ser h)) ];
    ];

  Bench_util.subsection "(3) Cobra constraint pruning on vs off (MT history)";
  let r =
    Bench_util.mt_history ~keys:300 ~txns:(Bench_util.scale 2000) ~seed:603 ()
  in
  let h = r.Scheduler.history in
  (match Polygraph.build h with
  | Error _ -> print_endline "  (history rejected by the G1 screen)"
  | Ok pg ->
      let n = Index.num_vertices pg.Polygraph.idx in
      let pruned, t_pruned =
        Stats.time_it (fun () -> Prune.run ~n pg ~use_anti:true)
      in
      Bench_util.print_table
        ~header:[ "variant"; "constraints to SAT"; "prep (ms)" ]
        [
          [ "with pruning";
            string_of_int (List.length pruned.Prune.undecided);
            Bench_util.ms t_pruned ];
          [ "without pruning";
            string_of_int (Polygraph.num_constraints pg);
            Bench_util.ms pg.Polygraph.construct_s ];
        ];
      print_endline
        "  (without pruning every constraint becomes a SAT variable; with\n\
        \   it, valid MT histories usually need no solving at all)")
