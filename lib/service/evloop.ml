(* Readiness multiplexer for the service front end: epoll on Linux
   (lib/service/evloop_stubs.c), Unix.select elsewhere.

   Registrations are identified by a caller-chosen int token (>= 0),
   which epoll carries in [epoll_data] — a wait hands back (token,
   readiness) pairs with no fd lookup on the hot path.  The select
   fallback keeps a token table and rebuilds its fd sets per wait; it is
   correctness cover for non-Linux builds, not a performance path.

   Threading: exactly one thread (the loop thread) may call
   {!add}/{!modify}/{!remove}/{!wait}.  {!wakeup} is the one cross-
   thread entry point: it writes a byte to a self-pipe registered for
   read interest, making a blocked {!wait} return immediately.  A full
   pipe means a wakeup is already pending, so the write error is
   ignored. *)

external available : unit -> bool = "mtc_evloop_available"
external epoll_create : unit -> int = "mtc_epoll_create"
external evloop_close : int -> unit = "mtc_evloop_close"

external epoll_ctl : int -> int -> Unix.file_descr -> int -> int -> unit
  = "mtc_epoll_ctl"

external epoll_wait : int -> int -> int array -> int = "mtc_epoll_wait"

let max_events = 512
let wake_token = -1

type backend = Epoll of int | Select

type t = {
  backend : backend;
  table : (int, Unix.file_descr * int) Hashtbl.t;
      (** token -> (fd, interest mask); authoritative for [Select],
          kept in both backends so [fd_count] is cheap *)
  events : int array;  (** flat (token, mask) pairs filled by a wait *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  drain : Bytes.t;
  mutable closed : bool;
}

let backend_name t =
  match t.backend with Epoll _ -> "epoll" | Select -> "select"

let interest ~read ~write = (if read then 1 else 0) lor (if write then 2 else 0)

let create () =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let backend = if available () then Epoll (epoll_create ()) else Select in
  let t =
    {
      backend;
      table = Hashtbl.create 1024;
      events = Array.make (2 * max_events) 0;
      wake_r;
      wake_w;
      drain = Bytes.create 256;
      closed = false;
    }
  in
  (match backend with
  | Epoll ep -> epoll_ctl ep 0 wake_r 1 wake_token
  | Select -> ());
  t

let add t fd ~token ~read ~write =
  if token < 0 then invalid_arg "Evloop.add: token must be >= 0";
  let mask = interest ~read ~write in
  Hashtbl.replace t.table token (fd, mask);
  match t.backend with
  | Epoll ep -> epoll_ctl ep 0 fd mask token
  | Select -> ()

let modify t fd ~token ~read ~write =
  let mask = interest ~read ~write in
  Hashtbl.replace t.table token (fd, mask);
  match t.backend with
  | Epoll ep -> epoll_ctl ep 1 fd mask token
  | Select -> ()

let remove t fd ~token =
  Hashtbl.remove t.table token;
  match t.backend with
  | Epoll ep -> (
      (* the fd may already be closed (peer gone): EBADF etc. is fine *)
      try epoll_ctl ep 2 fd 0 token with Failure _ -> ())
  | Select -> ()

let fd_count t = Hashtbl.length t.table

let drain_wake t =
  let rec go () =
    match Unix.read t.wake_r t.drain 0 (Bytes.length t.drain) with
    | n when n = Bytes.length t.drain -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let wait_epoll t ep ~timeout_ms ~handle =
  let n = epoll_wait ep timeout_ms t.events in
  let delivered = ref 0 in
  for i = 0 to n - 1 do
    let token = t.events.(2 * i) and mask = t.events.((2 * i) + 1) in
    if token = wake_token then drain_wake t
    else begin
      incr delivered;
      handle ~token ~readable:(mask land 1 <> 0) ~writable:(mask land 2 <> 0)
    end
  done;
  !delivered

let wait_select t ~timeout_ms ~handle =
  let rds = ref [ t.wake_r ] and wrs = ref [] in
  let by_fd = Hashtbl.create (Hashtbl.length t.table) in
  Hashtbl.iter
    (fun token (fd, mask) ->
      Hashtbl.replace by_fd fd token;
      if mask land 1 <> 0 then rds := fd :: !rds;
      if mask land 2 <> 0 then wrs := fd :: !wrs)
    t.table;
  match Unix.select !rds !wrs [] (float_of_int timeout_ms /. 1000.) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
  | r, w, _ ->
      let delivered = ref 0 in
      let wset = Hashtbl.create 16 in
      List.iter (fun fd -> Hashtbl.replace wset fd ()) w;
      List.iter
        (fun fd ->
          if fd = t.wake_r then drain_wake t
          else
            match Hashtbl.find_opt by_fd fd with
            | None -> ()
            | Some token ->
                incr delivered;
                let writable = Hashtbl.mem wset fd in
                if writable then Hashtbl.remove wset fd;
                handle ~token ~readable:true ~writable)
        r;
      Hashtbl.iter
        (fun fd () ->
          match Hashtbl.find_opt by_fd fd with
          | None -> ()
          | Some token ->
              incr delivered;
              handle ~token ~readable:false ~writable:true)
        wset;
      !delivered

let wait t ~timeout_ms ~handle =
  match t.backend with
  | Epoll ep -> wait_epoll t ep ~timeout_ms ~handle
  | Select -> wait_select t ~timeout_ms ~handle

let wakeup t =
  try ignore (Unix.write_substring t.wake_w "!" 0 1)
  with Unix.Unix_error _ -> () (* full pipe = wakeup already pending *)

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.backend with Epoll ep -> evloop_close ep | Select -> ());
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end
