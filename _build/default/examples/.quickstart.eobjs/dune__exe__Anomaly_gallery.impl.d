examples/anomaly_gallery.ml: Anomaly Array Checker Format History List Txn
