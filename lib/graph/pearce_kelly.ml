(* Flat incremental topological order maintenance (Pearce & Kelly, 2006).

   The seed kept one (int, unit) Hashtbl per vertex and direction and
   allocated two fresh hashtables (visited, parent) plus several sorted
   lists per reordering insert — the reorder itself did [List.nth pool i]
   inside [List.iteri], O(k²) in the affected-region size k.  This
   version is flat ints end to end:

   - adjacency: one growable {!Int_vec} per vertex and direction;
   - edge membership: a single open-addressed int set over packed
     [(u lsl 31) lor v] keys (backward-shift deletion, no tombstones, so
     the SAT solver's backtracking [remove_edge] stays cheap);
   - DFS scratch: epoch-stamped mark/parent arrays and reusable stack
     vectors, so discovery allocates nothing;
   - reorder: in-place heapsort of the two affected regions by current
     order index, then a linear merge of their index pools — O(k log k)
     and allocation-free.

   Capacity grows in place ({!ensure}): new vertices are isolated and
   take the largest order indices, so existing edges and the maintained
   order survive a grow — callers no longer replay their edge list. *)

type t = {
  mutable n : int;
  mutable succ : Int_vec.t array;
  mutable pred : Int_vec.t array;
  mutable ord : int array;  (* vertex -> topological index (a permutation) *)
  (* open-addressed edge set over packed (u, v); -1 marks an empty slot *)
  mutable eset : int array;
  mutable emask : int;  (* capacity - 1; capacity is a power of two *)
  mutable ecount : int;
  (* reusable DFS / reorder scratch *)
  mutable mark : int array;  (* epoch stamps: mark.(v) = epoch <=> visited *)
  mutable epoch : int;
  mutable parent : int array;  (* valid only for vertices marked this epoch *)
  stack : Int_vec.t;
  df : Int_vec.t;  (* forward-affected region *)
  db : Int_vec.t;  (* backward-affected region *)
  pool : Int_vec.t;  (* merged order-index pool *)
}

let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (2 * c)

let create n =
  let cap = ceil_pow2 (Stdlib.max 16 n) 16 in
  {
    n;
    succ = Array.init n (fun _ -> Int_vec.create 4);
    pred = Array.init n (fun _ -> Int_vec.create 4);
    ord = Array.init n (fun i -> i);
    eset = Array.make cap (-1);
    emask = cap - 1;
    ecount = 0;
    mark = Array.make n 0;
    epoch = 0;
    parent = Array.make n (-1);
    stack = Int_vec.create 64;
    df = Int_vec.create 64;
    db = Int_vec.create 64;
    pool = Int_vec.create 64;
  }

let n t = t.n
let num_edges t = t.ecount

let ensure t needed =
  if needed > t.n then begin
    let old_n = t.n and old_succ = t.succ and old_pred = t.pred in
    t.succ <-
      Array.init needed (fun i ->
          if i < old_n then old_succ.(i) else Int_vec.create 4);
    t.pred <-
      Array.init needed (fun i ->
          if i < old_n then old_pred.(i) else Int_vec.create 4);
    (* new vertices are isolated: giving them their own index extends the
       permutation with the largest order positions, which any existing
       topological order is consistent with *)
    let ord = Array.init needed (fun i -> i) in
    Array.blit t.ord 0 ord 0 old_n;
    t.ord <- ord;
    let mark = Array.make needed 0 in
    Array.blit t.mark 0 mark 0 old_n;
    t.mark <- mark;
    let parent = Array.make needed (-1) in
    Array.blit t.parent 0 parent 0 old_n;
    t.parent <- parent;
    t.n <- needed
  end

(* --- edge-membership set --- *)

let pack u v = (u lsl 31) lor v

let eslot mask k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land mask

(* Index of [k]'s slot if present, of the insertion slot otherwise. *)
let eprobe t k =
  let i = ref (eslot t.emask k) in
  while t.eset.(!i) <> -1 && t.eset.(!i) <> k do
    i := (!i + 1) land t.emask
  done;
  !i

let egrow t =
  let old = t.eset in
  let cap = 2 * Array.length old in
  t.eset <- Array.make cap (-1);
  t.emask <- cap - 1;
  Array.iter (fun k -> if k <> -1 then t.eset.(eprobe t k) <- k) old

let eadd t k =
  (* keep the load factor at or below 1/2 *)
  if 2 * (t.ecount + 1) > Array.length t.eset then egrow t;
  let i = eprobe t k in
  if t.eset.(i) <> k then begin
    t.eset.(i) <- k;
    t.ecount <- t.ecount + 1
  end

let eremove t k =
  let i = eprobe t k in
  if t.eset.(i) = k then begin
    t.ecount <- t.ecount - 1;
    t.eset.(i) <- -1;
    (* backward-shift deletion: re-seat later entries of the probe run so
       lookups never need tombstones *)
    let mask = t.emask in
    let hole = ref i and j = ref i and scanning = ref true in
    while !scanning do
      j := (!j + 1) land mask;
      let k' = t.eset.(!j) in
      if k' = -1 then scanning := false
      else begin
        let h = eslot mask k' in
        (* the entry may stay iff its home slot lies cyclically in
           (hole, j]; otherwise it moves back into the hole *)
        let stays =
          if !j > !hole then h > !hole && h <= !j else h > !hole || h <= !j
        in
        if not stays then begin
          t.eset.(!hole) <- k';
          t.eset.(!j) <- -1;
          hole := !j
        end
      end
    done
  end

let mem_edge t u v = t.eset.(eprobe t (pack u v)) <> -1

(* --- adjacency --- *)

let vec_remove vec x =
  let len = Int_vec.length vec in
  let rec find i =
    if i >= len then -1 else if Int_vec.get vec i = x then i else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then begin
    Int_vec.set vec i (Int_vec.get vec (len - 1));
    ignore (Int_vec.pop vec)
  end

let record_edge t u v =
  Int_vec.push t.succ.(u) v;
  Int_vec.push t.pred.(v) u;
  eadd t (pack u v)

let remove_edge t u v =
  if mem_edge t u v then begin
    eremove t (pack u v);
    vec_remove t.succ.(u) v;
    vec_remove t.pred.(v) u
  end

let order_index t v = t.ord.(v)

(* --- affected-region discovery --- *)

(* Forward DFS from [v] over vertices with ord <= ub, collecting the
   visited set into [t.df].  Returns [true] if [target] was reached, in
   which case the parent chain from [target] back to [v] is valid. *)
let dfs_forward t v ~ub ~target =
  t.epoch <- t.epoch + 1;
  let ep = t.epoch in
  Int_vec.clear t.df;
  Int_vec.clear t.stack;
  t.mark.(v) <- ep;
  Int_vec.push t.stack v;
  Int_vec.push t.df v;
  let hit = ref false in
  while (not !hit) && Int_vec.length t.stack > 0 do
    let x = Int_vec.pop t.stack in
    let sv = t.succ.(x) in
    let deg = Int_vec.length sv in
    let i = ref 0 in
    while (not !hit) && !i < deg do
      let w = Int_vec.get sv !i in
      if t.ord.(w) <= ub && t.mark.(w) <> ep then begin
        t.parent.(w) <- x;
        if w = target then hit := true
        else begin
          t.mark.(w) <- ep;
          Int_vec.push t.stack w;
          Int_vec.push t.df w
        end
      end;
      incr i
    done
  done;
  !hit

(* Backward DFS from [u] over vertices with ord >= lb, into [t.db]. *)
let dfs_backward t u ~lb =
  t.epoch <- t.epoch + 1;
  let ep = t.epoch in
  Int_vec.clear t.db;
  Int_vec.clear t.stack;
  t.mark.(u) <- ep;
  Int_vec.push t.stack u;
  Int_vec.push t.db u;
  while Int_vec.length t.stack > 0 do
    let x = Int_vec.pop t.stack in
    let pv = t.pred.(x) in
    for i = 0 to Int_vec.length pv - 1 do
      let w = Int_vec.get pv i in
      if t.ord.(w) >= lb && t.mark.(w) <> ep then begin
        t.mark.(w) <- ep;
        Int_vec.push t.stack w;
        Int_vec.push t.db w
      end
    done
  done

(* [v; ...; target] along the parent chain left by a hit dfs_forward. *)
let build_path t ~v ~target =
  let rec path acc x = if x = v then x :: acc else path (x :: acc) t.parent.(x) in
  path [] target

(* In-place heapsort of [vec]'s prefix keyed by current order index —
   ord is a permutation, so keys are distinct and the result order is
   deterministic. *)
let sort_by_ord t vec =
  let a = Int_vec.data vec and len = Int_vec.length vec in
  let ord = t.ord in
  let swap i j =
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  in
  let rec sift i len =
    let l = (2 * i) + 1 in
    if l < len then begin
      let c = if l + 1 < len && ord.(a.(l + 1)) > ord.(a.(l)) then l + 1 else l in
      if ord.(a.(c)) > ord.(a.(i)) then begin
        swap i c;
        sift c len
      end
    end
  in
  for i = (len / 2) - 1 downto 0 do
    sift i len
  done;
  for i = len - 1 downto 1 do
    swap 0 i;
    sift 0 i
  done

let sp_reorder = Obs.Trace.intern "pk/reorder"

let c_inserts =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Edges accepted into the incremental topological order"
    "mtc_pk_inserts_total"

let c_reorders =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Accepted edges that required reordering an affected region"
    "mtc_pk_reorders_total"

let add_edge t u v =
  if u = v then Error [ u ]
  else if mem_edge t u v then Ok ()
  else if t.ord.(u) < t.ord.(v) then begin
    (* already consistent with the order: just record *)
    record_edge t u v;
    Obs.Counter.incr c_inserts;
    Ok ()
  end
  else if dfs_forward t v ~ub:t.ord.(u) ~target:u then
    (* v reaches u: the edge closes a cycle; structure unchanged *)
    Error (build_path t ~v ~target:u)
  else begin
    let t0 = Obs.Trace.enter () in
    (* affected region: ord in [ord(v), ord(u)].  delta_b (reaching u)
       takes the smallest indices of the combined pool, then delta_f
       (reachable from v) — each group keeping its internal relative
       order. *)
    dfs_backward t u ~lb:t.ord.(v);
    sort_by_ord t t.df;
    sort_by_ord t t.db;
    let ord = t.ord in
    let db = Int_vec.data t.db and nb = Int_vec.length t.db in
    let df = Int_vec.data t.df and nf = Int_vec.length t.df in
    Int_vec.clear t.pool;
    let i = ref 0 and j = ref 0 in
    while !i < nb || !j < nf do
      if !j >= nf || (!i < nb && ord.(db.(!i)) < ord.(df.(!j))) then begin
        Int_vec.push t.pool ord.(db.(!i));
        incr i
      end
      else begin
        Int_vec.push t.pool ord.(df.(!j));
        incr j
      end
    done;
    let pool = Int_vec.data t.pool in
    let k = ref 0 in
    for i = 0 to nb - 1 do
      ord.(db.(i)) <- pool.(!k);
      incr k
    done;
    for j = 0 to nf - 1 do
      ord.(df.(j)) <- pool.(!k);
      incr k
    done;
    record_edge t u v;
    Obs.Counter.incr c_inserts;
    Obs.Counter.incr c_reorders;
    Obs.Trace.exit sp_reorder t0;
    Ok ()
  end

let iter_succ t u f =
  let sv = t.succ.(u) in
  for i = 0 to Int_vec.length sv - 1 do
    f (Int_vec.get sv i)
  done

let words t =
  let adj = ref 0 in
  for v = 0 to t.n - 1 do
    adj :=
      !adj
      + Array.length (Int_vec.data t.succ.(v))
      + Array.length (Int_vec.data t.pred.(v))
  done;
  (* ord + mark + parent + two words of header per adjacency vector *)
  (5 * t.n) + !adj + Array.length t.eset

(* Watermark compaction: drop every vertex [keep] rejects and renumber
   the survivors to a dense prefix, preserving their relative
   topological order.  Soundness is the caller's obligation: no future
   edge may name a dropped vertex, and — because every recorded edge
   goes forward in the order — a dropped vertex can only be adjacent to
   other dropped vertices or appear in a survivor's pred list, where a
   traversal bounded below by a surviving vertex's order index never
   follows it.  Relative order is preserved exactly, so subsequent
   insertions discover identical affected regions and cycle witnesses
   (up to the renumbering) as the uncompacted structure would. *)
let compact ?(on_edge = fun _ _ _ _ -> ()) t ~keep =
  if Array.length keep < t.n then
    invalid_arg "Pearce_kelly.compact: keep array too short";
  let remap = Array.make t.n (-1) in
  let m = ref 0 in
  for v = 0 to t.n - 1 do
    if keep.(v) then begin
      remap.(v) <- !m;
      incr m
    end
  done;
  let m = !m in
  let old_of_new = Array.make m 0 in
  for v = 0 to t.n - 1 do
    if keep.(v) then old_of_new.(remap.(v)) <- v
  done;
  (* re-rank: walk old order positions ascending, assign dense ranks to
     survivors — an order-respecting renumbering of the permutation *)
  let inv = Array.make t.n 0 in
  for v = 0 to t.n - 1 do
    inv.(t.ord.(v)) <- v
  done;
  let ord = Array.make m 0 in
  let rank = ref 0 in
  for r = 0 to t.n - 1 do
    let v = inv.(r) in
    if keep.(v) then begin
      ord.(remap.(v)) <- !rank;
      incr rank
    end
  done;
  let filter_vec ~u vec =
    let len = Int_vec.length vec in
    let out = Int_vec.create 4 in
    for i = 0 to len - 1 do
      let w = Int_vec.get vec i in
      if keep.(w) then begin
        Int_vec.push out remap.(w);
        if u >= 0 then on_edge u w remap.(u) remap.(w)
      end
    done;
    out
  in
  let succ =
    Array.init m (fun j ->
        let u = old_of_new.(j) in
        filter_vec ~u t.succ.(u))
  in
  let pred = Array.init m (fun j -> filter_vec ~u:(-1) t.pred.(old_of_new.(j))) in
  t.n <- m;
  t.succ <- succ;
  t.pred <- pred;
  t.ord <- ord;
  t.eset <- Array.make 16 (-1);
  t.emask <- 15;
  t.ecount <- 0;
  for u = 0 to m - 1 do
    let sv = t.succ.(u) in
    for i = 0 to Int_vec.length sv - 1 do
      eadd t (pack u (Int_vec.get sv i))
    done
  done;
  t.mark <- Array.make (Stdlib.max 1 m) 0;
  t.parent <- Array.make (Stdlib.max 1 m) (-1);
  t.epoch <- 0;
  remap

let check_invariant t =
  let ok = ref true in
  for u = 0 to t.n - 1 do
    let sv = t.succ.(u) in
    for i = 0 to Int_vec.length sv - 1 do
      if t.ord.(u) >= t.ord.(Int_vec.get sv i) then ok := false
    done
  done;
  (* ord must be a permutation *)
  let seen = Array.make t.n false in
  Array.iter
    (fun i -> if i < 0 || i >= t.n || seen.(i) then ok := false else seen.(i) <- true)
    t.ord;
  (* adjacency, edge set and edge count must agree *)
  let edges = ref 0 in
  for u = 0 to t.n - 1 do
    let sv = t.succ.(u) in
    for i = 0 to Int_vec.length sv - 1 do
      incr edges;
      if not (mem_edge t u (Int_vec.get sv i)) then ok := false
    done
  done;
  if !edges <> t.ecount then ok := false;
  !ok

(* Snapshot codec.  The succ/pred vectors and the order permutation are
   serialized verbatim: DFS discovery iterates succ (forward) and pred
   (backward) in push order and ties are broken by [ord], so a restored
   graph renders byte-identical cycle witnesses.  The edge set, edge
   count and scratch arrays are derivable — rebuilt on decode. *)

let encode buf t =
  Binio_core.add_uvarint buf t.n;
  for v = 0 to t.n - 1 do
    Binio_core.add_uvarint buf t.ord.(v)
  done;
  for v = 0 to t.n - 1 do
    Int_vec.encode buf t.succ.(v)
  done;
  for v = 0 to t.n - 1 do
    Int_vec.encode buf t.pred.(v)
  done

let decode r =
  let n = Binio_core.read_uvarint r in
  if n < 0 || n > Binio_core.remaining r then
    Binio_core.fail "pearce_kelly vertex count %d overruns input" n;
  let t = create n in
  let seen = Array.make (Stdlib.max 1 n) false in
  for v = 0 to n - 1 do
    let o = Binio_core.read_uvarint r in
    if o < 0 || o >= n || seen.(o) then
      Binio_core.fail "pearce_kelly order is not a permutation at vertex %d" v;
    seen.(o) <- true;
    t.ord.(v) <- o
  done;
  for v = 0 to n - 1 do
    t.succ.(v) <- Int_vec.decode r
  done;
  for v = 0 to n - 1 do
    t.pred.(v) <- Int_vec.decode r
  done;
  for u = 0 to n - 1 do
    let sv = t.succ.(u) in
    for i = 0 to Int_vec.length sv - 1 do
      let v = Int_vec.get sv i in
      if v < 0 || v >= n then
        Binio_core.fail "pearce_kelly successor %d out of range" v;
      eadd t (pack u v)
    done
  done;
  if not (check_invariant t) then
    Binio_core.fail "pearce_kelly snapshot violates the order invariant";
  t
