(** Workload specifications: per-session programs of abstract transactions.

    Operations name only keys; write values are assigned at execution time
    by the runner (session id ⊕ counter), so that every attempt — including
    retries after aborts — writes fresh unique values, as required by
    Definition 9 and common checker practice (paper Section II-A). *)

type prog_op =
  | Pread of Op.key
  | Pwrite of Op.key  (** value chosen by the runner *)
  | Pappend of Op.key  (** list-append (Elle workloads); runner-managed *)

type prog_txn = prog_op list

type t = {
  name : string;
  num_keys : int;
  sessions : prog_txn list array;  (** index [s-1] holds session [s] *)
}

val num_sessions : t -> int
val num_txns : t -> int
val num_ops : t -> int

val is_mini_op_list : prog_txn -> bool
(** Shape check (Definition 8) at the program level. *)

val pp : Format.formatter -> t -> unit
(** Summary line. *)
