type t = { txns : Txn.t array; num_sessions : int; num_keys : int }

let init_id = 0

let init_txn ~num_keys =
  let ops = List.init num_keys (fun k -> Op.Write (k, 0)) in
  Txn.make ~id:init_id ~session:0 ~start_ts:min_int ~commit_ts:min_int ops

let make ~num_keys ~num_sessions txns =
  let all = Array.of_list (init_txn ~num_keys :: txns) in
  Array.iteri
    (fun i (t : Txn.t) ->
      if t.id <> i then
        invalid_arg
          (Printf.sprintf "History.make: txn at position %d has id %d" i t.id);
      if i > 0 && (t.session < 1 || t.session > num_sessions) then
        invalid_arg
          (Printf.sprintf "History.make: T%d has session %d out of [1,%d]" t.id
             t.session num_sessions);
      Array.iter
        (fun op ->
          let k = Op.key op in
          if k < 0 || k >= num_keys then
            invalid_arg
              (Printf.sprintf "History.make: T%d accesses key %d out of [0,%d)"
                 t.id k num_keys))
        t.ops)
    all;
  { txns = all; num_sessions; num_keys }

let txn h id = h.txns.(id)
let num_txns h = Array.length h.txns

let committed h =
  Array.to_list h.txns |> List.filter Txn.is_committed

let committed_count h =
  Array.fold_left (fun n t -> if Txn.is_committed t then n + 1 else n) 0 h.txns

let session_chain h s =
  Array.to_list h.txns
  |> List.filter (fun (t : Txn.t) -> t.session = s && Txn.is_committed t)
  |> List.map (fun (t : Txn.t) -> t.id)

let so_pairs h =
  let acc = ref [] in
  for s = 1 to h.num_sessions do
    match session_chain h s with
    | [] -> ()
    | first :: _ as chain ->
        acc := (init_id, first) :: !acc;
        let rec link = function
          | a :: (b :: _ as rest) ->
              acc := (a, b) :: !acc;
              link rest
          | [ _ ] | [] -> ()
        in
        link chain
  done;
  List.rev !acc

let iter_so_pairs h f =
  (* Single pass in id order (id order refines session order): remember
     the last committed txn per session, emit (prev, next) as we go.
     Same pair multiset as [so_pairs], no list materialization. *)
  let last = Array.make (h.num_sessions + 1) (-1) in
  Array.iter
    (fun (t : Txn.t) ->
      if Txn.is_committed t && t.id <> init_id then begin
        let s = t.session in
        f (if last.(s) < 0 then init_id else last.(s)) t.id;
        last.(s) <- t.id
      end)
    h.txns

let rt_before h t1 t2 =
  let a = h.txns.(t1) and b = h.txns.(t2) in
  a.commit_ts < b.start_ts

let unique_values h =
  let seen = Hashtbl.create 1024 in
  let exception Dup of string in
  try
    Array.iter
      (fun (t : Txn.t) ->
        Array.iter
          (fun op ->
            match op with
            | Op.Write (k, v) -> (
                match Hashtbl.find_opt seen (k, v) with
                | Some other when other <> t.id ->
                    raise
                      (Dup
                         (Printf.sprintf
                            "writes of value %d to key %d by both T%d and T%d"
                            v k other t.id))
                | Some _ | None -> Hashtbl.replace seen (k, v) t.id)
            | Op.Read _ -> ())
          t.ops)
      h.txns;
    Ok ()
  with Dup msg -> Error msg

let all_mini h =
  let exception Bad of int in
  try
    Array.iter
      (fun (t : Txn.t) ->
        if t.id <> init_id && not (Mini.is_mini t) then raise (Bad t.id))
      h.txns;
    Ok ()
  with Bad id -> Error (Printf.sprintf "T%d is not a mini-transaction" id)

let validate h =
  match unique_values h with Error _ as e -> e | Ok () -> all_mini h

let stats h =
  let ops =
    Array.fold_left (fun n (t : Txn.t) -> n + Array.length t.ops) 0 h.txns
  in
  Printf.sprintf "%d txns (%d committed) / %d sessions / %d keys / %d ops"
    (num_txns h - 1)
    (committed_count h - 1)
    h.num_sessions h.num_keys ops

let pp ppf h =
  Format.fprintf ppf "@[<v>history: %s" (stats h);
  Array.iter
    (fun t ->
      if (t : Txn.t).id <> init_id then Format.fprintf ppf "@,%a" Txn.pp t)
    h.txns;
  Format.fprintf ppf "@]"
