(** Elle-style list-append workloads (paper Section V-F2): transactions of
    up to [max_txn_len] operations, each a list append or a list read on a
    random key.  Appends are executed by the runner as read-modify-writes
    over interned list values ({!Intern} in [mtc.runner]); the Elle
    baseline sees the resulting lists and infers write-write orders from
    them.

    Also generates "wr-register" workloads (plain reads/writes of
    registers) — Elle's weaker mode — by setting [registers = true]:
    appends are replaced by blind register writes. *)

type params = {
  num_sessions : int;
  num_txns : int;
  num_keys : int;
  max_txn_len : int;
  registers : bool;
  dist : Distribution.kind;
  seed : int;
}

val default : params
(** 10 sessions × 1000 txns on 10 keys, max length 4, list-append mode,
    exponential access distribution (the Fig. 13 setup). *)

val generate : params -> Spec.t
