(** End-to-end checking pipeline: generate → execute → verify, with the
    per-phase time and memory accounting reported in the paper's
    evaluation (Figures 10, 14, 17 and Table II). *)

type verdict = V_pass | V_fail of string

type measurement = {
  spec_name : string;
  gen_s : float;  (** history generation (workload execution) time *)
  verify_s : float;  (** history verification time *)
  verify_alloc_bytes : float;
      (** bytes allocated by the verifier — the memory metric *)
  committed : int;
  attempts : int;
  abort_rate : float;
  verdict : verdict;
}

val pp_measurement : Format.formatter -> measurement -> unit

val measure :
  ?sched:Scheduler.params ->
  db:Db.config ->
  spec:Spec.t ->
  verify:(Scheduler.result -> verdict) ->
  unit ->
  measurement

val mtc_verify : Checker.level -> Scheduler.result -> verdict
(** Plug MTC's own checker into {!measure}. *)

type hunt_outcome = {
  violation : string option;  (** rendered counterexample, if found *)
  anomaly : string option;  (** {!Report.classify}'s anomaly name *)
  ce_position : int option;  (** Table II's "CE position" *)
  trials : int;
  committed_total : int;
  hunt_gen_s : float;
  hunt_verify_s : float;
}

val hunt :
  ?sched_seed:int ->
  ?jobs:int ->
  db:Db.config ->
  make_spec:(seed:int -> Spec.t) ->
  level:Checker.level ->
  max_trials:int ->
  unit ->
  hunt_outcome
(** Run freshly-seeded workloads against a (possibly fault-injected)
    engine until the checker reports a violation or [max_trials] histories
    pass.

    [jobs] (default 1) fans the independent trials out over a
    {!Pool} of that many domains.  Verdict, [trials], [ce_position] and
    [committed_total] are identical for every [jobs] value: batches are
    scanned in trial order and the lowest-numbered failing trial wins;
    only the wall clock changes.  ([hunt_gen_s]/[hunt_verify_s] remain
    sums of per-trial CPU times, so they can exceed the elapsed time
    when [jobs > 1].) *)
