lib/baselines/dbcop.mli: History
