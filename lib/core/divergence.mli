(** The DIVERGENCE pattern (paper Definition 10 and Figure 3): two
    transactions read the same value of an object from the same writer and
    then both write (different, by unique values) values to it.  Any history
    containing this pattern violates SI (Lemma 1) — CHECKSI screens for it
    before building the dependency graph. *)

type instance = {
  key : Op.key;
  writer : Txn.id;  (** the transaction both readers read from *)
  reader1 : Txn.id * Op.value;  (** first diverging reader and its write *)
  reader2 : Txn.id * Op.value;
}

val pp_instance : Format.formatter -> instance -> unit

val find : ?pool:Pool.t -> Index.t -> instance option
(** First instance found, scanning committed transactions in id order.
    O(n) using a [(key, read value) -> writing reader] table.  With
    [pool], key stripes scan concurrently (a diverging pair lives on one
    key) and a min-position tie-break keeps the reported instance
    identical to the sequential scan. *)

val find_all : Index.t -> instance list
(** Every diverging pair (an object read by [k] diverging writers yields
    [k-1] instances against the first one). *)
