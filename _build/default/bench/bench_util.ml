(* Shared helpers for the benchmark harness: history generation through
   the engine, timing, and paper-style table printing. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n--- %s ---\n" title

(* Aligned table printing. *)
let print_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun w row -> Stdlib.max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let ms t = Printf.sprintf "%.2f" (1000.0 *. t)
let mb bytes = Printf.sprintf "%.1f" (bytes /. 1_048_576.0)
let pct x = Printf.sprintf "%.1f" (100.0 *. x)

(* Median-of-k timing of a single function. *)
let time_median ?(repeat = 3) f =
  let samples = Stats.time_repeat ~warmup:1 ~repeat f in
  Stats.median samples

(* Generate an MT history through the engine at a given level. *)
let mt_history ?(level = Isolation.Serializable) ?(dist = Distribution.Uniform)
    ?(sessions = 10) ?(keys = 500) ~txns ~seed () =
  let spec =
    Mt_gen.generate
      { Mt_gen.num_sessions = sessions; num_txns = txns; num_keys = keys; dist; seed }
  in
  let db = { Db.level; fault = Fault.No_fault; num_keys = keys; seed } in
  Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ()

let gt_history ?(level = Isolation.Serializable) ?(dist = Distribution.Uniform)
    ?(sessions = 10) ?(keys = 500) ?(ops = 10) ~txns ~seed () =
  let spec =
    Gt_gen.generate
      { Gt_gen.num_sessions = sessions; num_txns = txns; num_keys = keys;
        ops_per_txn = ops; dist; seed }
  in
  let db = { Db.level; fault = Fault.No_fault; num_keys = keys; seed } in
  Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ()

(* Allocation (bytes) during [f] — the memory metric of Figures 10d-f/17. *)
let alloc_during f =
  let a0 = Gc.allocated_bytes () in
  let r = f () in
  (r, Gc.allocated_bytes () -. a0)

let verdict_str b = if b then "pass" else "VIOLATION"
