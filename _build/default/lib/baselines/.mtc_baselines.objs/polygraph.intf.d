lib/baselines/polygraph.mli: History Index Int_check Op
