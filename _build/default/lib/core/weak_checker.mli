(** Checking weaker isolation levels over mini-transaction histories — the
    extension the paper leaves as future work (Section VII), made easy by
    the same structure that powers the strong-level algorithms: with
    unique values and the RMW pattern, each object's versions form a
    *tree* (each write's parent is the version its transaction read), and
    the tree order is forced into any commit/arbitration order because
    tree edges are WR dependencies.

    Three levels, from weakest to strongest:
    - {b READ COMMITTED} (Adya's PL-2): the INT screen (no thin-air,
      aborted or intermediate reads, G1a/G1b) plus no G1c cycle over
      WR ∪ WW.
    - {b READ ATOMIC} (RAMP): READ COMMITTED plus no fractured reads — a
      transaction that reads object [x] from writer [W] must not read,
      on any other object [y] that [W] also wrote, a version strictly
      older (a strict tree ancestor) than [W]'s write.
    - {b CAUSAL} (transactional causal consistency): READ COMMITTED plus
      (i) the causal order hb = (SO ∪ WR)⁺ is acyclic and (ii) no stale
      read: a read must not return a version with a strict tree descendant
      written by an hb-predecessor of the reader.

    On the Figure 5 catalogue: the intra anomalies (a–g) fail all three;
    SESSIONGUARANTEEVIOLATION and CAUSALITYVIOLATION fail only CAUSAL;
    NONMONOTONICREAD and FRACTUREDREAD fail READ ATOMIC and CAUSAL;
    LONGFORK, LOSTUPDATE and WRITESKEW pass all three (they need SI/SER
    to be rejected).

    Like the strong checkers, these require mini-transaction histories
    with unique values (every write has a read-parent). *)

type level = Read_committed | Read_atomic | Causal

val level_name : level -> string

type violation =
  | Intra of Int_check.violation
  | G1c_cycle of (Txn.id * Deps.dep * Txn.id) list
      (** cycle over WR ∪ WW *)
  | Fractured of {
      reader : Txn.id;
      writer : Txn.id;
      read_key : Op.key;  (** the object read from [writer] *)
      stale_key : Op.key;  (** the object where an older version was read *)
    }
  | Causality of {
      reader : Txn.id;
      stale_key : Op.key;
      missed_writer : Txn.id;
          (** hb-predecessor whose write the reader missed *)
    }
  | Hb_cycle of (Txn.id * Deps.dep * Txn.id) list
      (** cycle over SO ∪ WR *)
  | Malformed of string

type outcome = Pass | Fail of violation

val pp_violation : Format.formatter -> violation -> unit

val check : level -> History.t -> outcome
val check_rc : History.t -> outcome
val check_ra : History.t -> outcome
val check_causal : History.t -> outcome

val passes : outcome -> bool
