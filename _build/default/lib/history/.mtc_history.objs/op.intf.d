lib/history/op.mli: Format
