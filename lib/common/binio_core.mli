(** Binary encode/decode primitives shared by the history codecs
    ({!module:Binio}), the service wire protocol ({!module:Wire}) and
    the persistence layer ([lib/persist]): LEB128 varints (zigzag for
    signed ints, so every native [int] including [min_int] round-trips)
    and length-prefixed strings.

    Encoders append to a caller-owned [Buffer.t] — one buffer per
    connection, reused across frames.  Decoders consume a [reader]
    cursor over an immutable source and raise {!Decode_error} on any
    malformed or truncated input; the protocol layer catches it at the
    frame boundary. *)

exception Decode_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Decode_error} with the formatted message. *)

(** The byte sources a reader can cursor over. *)
module Source : sig
  type bigstring =
    (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t =
    | Str of string  (** in-heap bytes (wire frames, tests) *)
    | Map of bigstring
        (** an mmap'd file: reads index the page cache, nothing is
            copied into the OCaml heap.  The mapping lives until the
            value is collected; keep the source (or a reader over it)
            alive for as long as decoded views need the bytes. *)

  val of_string : string -> t
  val length : t -> int

  val get : t -> int -> char
  (** Unchecked byte access — callers bounds-check [i] first. *)

  val sub_string : t -> int -> int -> string
  (** Copy a range out as a string ([pos], [len] must be in bounds). *)

  val map_file : string -> t
  (** Read-only map of a whole file ([Str ""] for an empty file, which
      cannot be mapped).  The fd is closed before returning — the
      mapping survives it.  Several domains may read (and cursor
      readers over) the same map concurrently.
      @raise Unix.Unix_error if the file cannot be opened or mapped. *)
end

type reader = { src : Source.t; mutable pos : int }

val reader : ?pos:int -> string -> reader
(** Cursor over an in-heap string ([Source.Str]). *)

val reader_of_source : ?pos:int -> Source.t -> reader

val remaining : reader -> int
val at_end : reader -> bool

val pos : reader -> int
val seek : reader -> int -> unit
(** Absolute cursor moves, for formats with an offset table (the binary
    history file's block index). *)

val read_byte : reader -> int

val read_bytes : reader -> int -> string
(** [read_bytes r len] copies the next [len] raw bytes out as a string.
    @raise Decode_error if fewer than [len] bytes remain. *)

val add_uvarint : Buffer.t -> int -> unit
val read_uvarint : reader -> int

val add_varint : Buffer.t -> int -> unit
(** Zigzag-encoded signed varint. *)

val read_varint : reader -> int

val add_string : Buffer.t -> string -> unit
val read_string : reader -> string
