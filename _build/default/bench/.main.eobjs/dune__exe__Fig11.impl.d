bench/fig11.ml: Bench_util Isolation List Printf Scheduler
