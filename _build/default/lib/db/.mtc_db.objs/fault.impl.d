lib/db/fault.ml: List Option
