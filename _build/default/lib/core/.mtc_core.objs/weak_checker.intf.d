lib/core/weak_checker.mli: Deps Format History Int_check Op Txn
