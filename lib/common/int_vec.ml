type t = { mutable data : int array; mutable len : int }

let create capacity = { data = Array.make (Stdlib.max 4 capacity) 0; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let d = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 d 0 t.len;
    t.data <- d
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i = t.data.(i)
let set t i x = t.data.(i) <- x
let clear t = t.len <- 0

let pop t =
  t.len <- t.len - 1;
  t.data.(t.len)
let data t = t.data

(* Serialization: length then each element as a zigzag varint (vectors
   holding [min_int] sentinels round-trip).  The decoded vector's
   capacity is exactly its length — iteration order and contents are
   bit-identical to the source, which the snapshot layer relies on. *)

let encode buf t =
  Binio_core.add_uvarint buf t.len;
  for i = 0 to t.len - 1 do
    Binio_core.add_varint buf t.data.(i)
  done

let decode r =
  let len = Binio_core.read_uvarint r in
  if len < 0 || len > Binio_core.remaining r then
    Binio_core.fail "int_vec length %d overruns input" len;
  let t = create len in
  for _ = 1 to len do
    push t (Binio_core.read_varint r)
  done;
  t
