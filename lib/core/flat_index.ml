(* Open-addressing hash map over native int keys: two flat int arrays and
   linear probing, so the verify hot path resolves writers without boxing
   a (key * value) tuple per probe the way the polymorphic [Hashtbl] of
   the seed did.  Values are restricted to [>= 0] (transaction ids, dense
   group ids), which lets [-1] in the value array double as the
   empty-slot marker — no separate occupancy array. *)

type t = {
  mutable keys : int array;  (* meaningful only where vals.(i) >= 0 *)
  mutable vals : int array;  (* -1 marks an empty slot *)
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable size : int;
}

let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (2 * c)

let create ?(capacity = 16) () =
  let cap = ceil_pow2 (Stdlib.max 16 capacity) 16 in
  { keys = Array.make cap 0; vals = Array.make cap (-1); mask = cap - 1;
    size = 0 }

let length t = t.size

(* Fibonacci-style multiplicative mixing; multiplication wraps, which is
   fine for a hash.  The xor-shift folds the high bits down so the
   [land mask] truncation still sees them. *)
let slot t k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land t.mask

(* Index of [k]'s slot if present, of the insertion slot otherwise. *)
let probe t k =
  let i = ref (slot t k) in
  while t.vals.(!i) >= 0 && t.keys.(!i) <> k do
    i := (!i + 1) land t.mask
  done;
  !i

let get t k =
  let i = probe t k in
  t.vals.(i)

let mem t k = get t k >= 0

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * Array.length old_vals in
  t.keys <- Array.make cap 0;
  t.vals <- Array.make cap (-1);
  t.mask <- cap - 1;
  for i = 0 to Array.length old_vals - 1 do
    if old_vals.(i) >= 0 then begin
      let j = probe t old_keys.(i) in
      t.keys.(j) <- old_keys.(i);
      t.vals.(j) <- old_vals.(i)
    end
  done

let set t k v =
  if v < 0 then invalid_arg "Flat_index.set: values must be >= 0";
  let i = probe t k in
  if t.vals.(i) >= 0 then t.vals.(i) <- v
  else begin
    (* Keep the load factor at or below 1/2. *)
    if 2 * (t.size + 1) > Array.length t.vals then grow t;
    let i = probe t k in
    t.keys.(i) <- k;
    t.vals.(i) <- v;
    t.size <- t.size + 1
  end

type map = t

(* --- writer lookup tables over int-packed (key, value) pairs --- *)

module Writers = struct
  type who =
    | Final of Txn.id
    | Intermediate of Txn.id
    | Aborted of Txn.id
    | Nobody

  (* A pair packs to [value * num_keys + key] when that cannot overflow
     (key in [0, num_keys), value >= 0 and small enough); the packing is
     then injective, so probing never confuses two pairs.  The rare
     unpackable pair (negative or astronomically large value, e.g. from a
     hand-written or decoded history) goes to a tuple-keyed spill table
     instead — empty on every generated workload. *)
  type t = {
    num_keys : int;
    final : map;
    intermediate : map;
    aborted : map;
    spill : (int * Op.key * Op.value, Txn.id) Hashtbl.t;
        (** keyed by (tier, key, value); tier 0/1/2 = final/interm/aborted *)
  }

  let create ~num_keys ~expected =
    {
      num_keys;
      final = create ~capacity:(2 * expected) ();
      intermediate = create ();
      aborted = create ();
      spill = Hashtbl.create 8;
    }

  (* -1 when the pair has no collision-free packing. *)
  let pack t k v =
    if t.num_keys > 0 && v >= 0 && v <= (max_int - k) / t.num_keys then
      (v * t.num_keys) + k
    else -1

  let set_in t tier tbl k v id =
    let p = pack t k v in
    if p >= 0 then set tbl p id else Hashtbl.replace t.spill (tier, k, v) id

  let set_final t k v id = set_in t 0 t.final k v id
  let set_intermediate t k v id = set_in t 1 t.intermediate k v id
  let set_aborted t k v id = set_in t 2 t.aborted k v id

  let resolve t k v =
    let p = pack t k v in
    if p >= 0 then begin
      let id = get t.final p in
      if id >= 0 then Final id
      else
        let id = get t.intermediate p in
        if id >= 0 then Intermediate id
        else
          let id = get t.aborted p in
          if id >= 0 then Aborted id else Nobody
    end
    else
      match Hashtbl.find_opt t.spill (0, k, v) with
      | Some id -> Final id
      | None -> (
          match Hashtbl.find_opt t.spill (1, k, v) with
          | Some id -> Intermediate id
          | None -> (
              match Hashtbl.find_opt t.spill (2, k, v) with
              | Some id -> Aborted id
              | None -> Nobody))
end
