#!/usr/bin/env bash
# End-to-end smoke of bounded-memory checking (`--gc-watermark`): a
# long clean stream fed through a live server under watermark GC must
# actually compact (gc_runs > 0) and hold live words well below an
# unbounded session of the same stream; and a faulty history fed
# through an aggressive absolute ceiling must render a counterexample
# byte-identical to the unbounded session's.  Wired into
# `dune build @check` from the root dune file.
set -u

MTC="$1"
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "gc-smoke: FAIL: $*" >&2; exit 1; }

# Everything the faulty feed prints from the first violation line on —
# the rendered counterexample, stripped of the progress chatter above.
rendered_of() { sed -n '/violation/,$p' "$1"; }

# The number after "KEY": in the single-line JSON the server returns.
stat_of() { grep -o "\"$2\":[0-9]*" "$1" | head -1 | cut -d: -f2; }

# -- fixtures: a long clean stream and a faulty SI history
"$MTC" gen --txns 20000 --keys 500 --sessions 8 --seed 7 \
  --out-bin "$TMP/clean.bin" >/dev/null || fail "mtc gen must succeed"
"$MTC" run --level si --txns 3000 --keys 40 --seed 13 \
  --fault lost-update --fault-p 0.005 -o "$TMP/bad.hist" >/dev/null
[ $? -eq 1 ] || fail "faulty run must report a violation (exit 1)"

# -- one server; its default policy is auto, feeds may override it
SOCK="$TMP/mtc.sock"
"$MTC" serve --listen "unix:$SOCK" --gc-watermark auto \
  > "$TMP/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.05; done
[ -S "$SOCK" ] || fail "server did not come up (see $TMP/serve.log)"

# -- unbounded baseline: the same stream with GC forced off.  --stats
# runs while the session is still open, so live_words is this session's.
"$MTC" feed "$TMP/clean.bin" -a "unix:$SOCK" --level ser \
  --gc-watermark off --stats > "$TMP/feed_off.out"
[ $? -eq 0 ] || fail "feed(clean, gc off) must pass"
LIVE_OFF=$(stat_of "$TMP/feed_off.out" live_words)
[ -n "$LIVE_OFF" ] && [ "$LIVE_OFF" -gt 0 ] \
  || fail "unbounded session must report live_words (see $TMP/feed_off.out)"

# -- bounded run: inherits the server's auto policy
"$MTC" feed "$TMP/clean.bin" -a "unix:$SOCK" --level ser \
  --stats > "$TMP/feed_auto.out"
[ $? -eq 0 ] || fail "feed(clean, gc auto) must pass with the same verdict"
GC_RUNS=$(stat_of "$TMP/feed_auto.out" gc_runs)
RECLAIMED=$(stat_of "$TMP/feed_auto.out" gc_reclaimed_words)
LIVE_AUTO=$(stat_of "$TMP/feed_auto.out" live_words)
[ -n "$GC_RUNS" ] && [ "$GC_RUNS" -gt 0 ] \
  || fail "auto watermark must have compacted (gc_runs > 0)"
[ -n "$RECLAIMED" ] && [ "$RECLAIMED" -gt 0 ] \
  || fail "compactions must have reclaimed words"
[ -n "$LIVE_AUTO" ] && [ $((3 * LIVE_AUTO)) -lt "$LIVE_OFF" ] \
  || fail "bounded live words ($LIVE_AUTO) must be well below unbounded ($LIVE_OFF)"

# -- the stats subcommand surfaces the GC counters as table rows
"$MTC" stats -a "unix:$SOCK" > "$TMP/stats.out" \
  || fail "stats must reach a live server"
grep -Eq '^gc_runs +[1-9]' "$TMP/stats.out" \
  || fail "stats table must include gc_runs (see $TMP/stats.out)"
grep -Eq '^gc_reclaimed_words +[1-9]' "$TMP/stats.out" \
  || fail "stats table must include gc_reclaimed_words"

# -- verdict equivalence: a faulty history poisoned after GC cycles
# (aggressive absolute ceiling) renders the identical counterexample
GC0=$(stat_of "$TMP/stats.out" gc_runs)
[ -n "$GC0" ] || GC0=$(grep -Eo '^gc_runs +[0-9]+' "$TMP/stats.out" | awk '{print $2}')
"$MTC" feed "$TMP/bad.hist" -a "unix:$SOCK" --level si \
  --gc-watermark off > "$TMP/bad_off.out"
[ $? -eq 1 ] || fail "feed(bad, gc off) must exit 1"
"$MTC" feed "$TMP/bad.hist" -a "unix:$SOCK" --level si \
  --gc-watermark 32768 > "$TMP/bad_gc.out"
[ $? -eq 1 ] || fail "feed(bad, gc 32768) must exit 1"
rendered_of "$TMP/bad_off.out" > "$TMP/bad_off.rendered"
rendered_of "$TMP/bad_gc.out" > "$TMP/bad_gc.rendered"
[ -s "$TMP/bad_off.rendered" ] || fail "unbounded faulty feed must render"
cmp -s "$TMP/bad_off.rendered" "$TMP/bad_gc.rendered" \
  || fail "bounded counterexample must be byte-identical to unbounded \
(diff $TMP/bad_off.rendered $TMP/bad_gc.rendered)"
"$MTC" stats -a "unix:$SOCK" > "$TMP/stats2.out" \
  || fail "stats must reach a live server after the faulty feeds"
GC1=$(grep -Eo '^gc_runs +[0-9]+' "$TMP/stats2.out" | awk '{print $2}')
[ -n "$GC0" ] && [ -n "$GC1" ] && [ "$GC1" -gt "$GC0" ] \
  || fail "the aggressive ceiling must have compacted before poisoning \
(gc_runs $GC0 -> $GC1)"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
rc=$?
SERVER_PID=""
[ $rc -eq 0 ] || fail "server must exit 0 on SIGTERM (got $rc)"

echo "gc-smoke: OK"
