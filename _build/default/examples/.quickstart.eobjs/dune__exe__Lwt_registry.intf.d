examples/lwt_registry.mli:
