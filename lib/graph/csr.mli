(** Frozen compressed-sparse-row snapshots of {!Digraph.t}.

    A [Csr.t] packs the adjacency structure into three flat arrays —
    [offsets] (length [n + 1]), [targets] and [labels] (length [E]) —
    so the verification kernels ({!Cycle}, {!Scc}, {!Topo}) can walk
    successors by integer indexing with zero per-visit allocation and
    cache-friendly sequential access.  Successors keep the insertion
    order of the source graph, so kernels visit edges in exactly the
    order the list-based code did. *)

type 'lab t = private {
  offsets : int array;  (** length [n + 1]; block of [u] is
                            [offsets.(u) .. offsets.(u+1) - 1] *)
  targets : int array;  (** length [E], insertion order per source *)
  labels : 'lab array;  (** length [E], parallel to [targets] *)
}

val of_digraph : 'lab Digraph.t -> 'lab t
(** O(V + E) snapshot.  Later mutations of the source graph are not
    reflected. *)

val n : _ t -> int
val num_edges : _ t -> int
val out_degree : _ t -> int -> int

val iter_succ : 'lab t -> int -> (int -> 'lab -> unit) -> unit
(** [iter_succ g u f] calls [f v lab] for every edge [u -> v], in
    insertion order.  Allocation-free. *)

val succ : 'lab t -> int -> (int * 'lab) list
(** Materialized successor list (for tests/debugging). *)

val mem_edge : _ t -> int -> int -> bool
