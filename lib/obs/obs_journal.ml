(* Structured service-event journal: per-domain rings of typed events,
   same discipline as Obs_trace — disabled is one atomic load and a
   branch, enabled appends unboxed ints into the calling domain's ring
   (slots reserved with fetch_and_add, overwrite-on-wrap). *)

let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

type kind =
  | Throttle_on
  | Throttle_off
  | Gc_compact
  | Wal_fsync_stall
  | Snapshot
  | Session_open
  | Session_close
  | Session_resume
  | Poison
  | Pin_warn
  | Pin_fence

let kind_code = function
  | Throttle_on -> 0
  | Throttle_off -> 1
  | Gc_compact -> 2
  | Wal_fsync_stall -> 3
  | Snapshot -> 4
  | Session_open -> 5
  | Session_close -> 6
  | Session_resume -> 7
  | Poison -> 8
  | Pin_warn -> 9
  | Pin_fence -> 10

let kind_of_code = function
  | 0 -> Some Throttle_on
  | 1 -> Some Throttle_off
  | 2 -> Some Gc_compact
  | 3 -> Some Wal_fsync_stall
  | 4 -> Some Snapshot
  | 5 -> Some Session_open
  | 6 -> Some Session_close
  | 7 -> Some Session_resume
  | 8 -> Some Poison
  | 9 -> Some Pin_warn
  | 10 -> Some Pin_fence
  | _ -> None

let kind_name = function
  | Throttle_on -> "throttle_on"
  | Throttle_off -> "throttle_off"
  | Gc_compact -> "gc_compact"
  | Wal_fsync_stall -> "wal_fsync_stall"
  | Snapshot -> "snapshot"
  | Session_open -> "session_open"
  | Session_close -> "session_close"
  | Session_resume -> "session_resume"
  | Poison -> "poison"
  | Pin_warn -> "pin_warn"
  | Pin_fence -> "pin_fence"

(* ------------------------------------------------------------------ *)
(* Per-domain rings: four parallel int arrays (kind code, monotonic ns,
   two payload words) plus the a-word; recording allocates nothing. *)

let cap_bits = 13
let cap = 1 lsl cap_bits
let mask = cap - 1

type ring = {
  r_dom : int;
  r_idx : int Atomic.t;  (* total reservations since last clear *)
  mutable r_cur : int;  (* drain cursor, guarded by rings_mu *)
  r_kind : int array;
  r_t : int array;
  r_a : int array;
  r_b : int array;
  r_c : int array;
}

let rings_mu = Mutex.create ()
let rings : ring list ref = ref []

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          r_dom = (Domain.self () :> int);
          r_idx = Atomic.make 0;
          r_cur = 0;
          r_kind = Array.make cap 0;
          r_t = Array.make cap 0;
          r_a = Array.make cap 0;
          r_b = Array.make cap 0;
          r_c = Array.make cap 0;
        }
      in
      Mutex.lock rings_mu;
      rings := r :: !rings;
      Mutex.unlock rings_mu;
      r)

let record kind t a b c =
  let r = Domain.DLS.get ring_key in
  let i = Atomic.fetch_and_add r.r_idx 1 land mask in
  Array.unsafe_set r.r_kind i kind;
  Array.unsafe_set r.r_t i t;
  Array.unsafe_set r.r_a i a;
  Array.unsafe_set r.r_b i b;
  Array.unsafe_set r.r_c i c

let emit kind ~a ~b ~c =
  if Atomic.get on then
    record (kind_code kind) (Obs_clock.now_ns ()) a b c

(* ------------------------------------------------------------------ *)

type event = {
  j_kind : kind;
  j_t : int;  (** ns, monotonic origin *)
  j_a : int;
  j_b : int;
  j_c : int;
  j_dom : int;
}

let event_at r i =
  {
    j_kind = Option.value (kind_of_code r.r_kind.(i)) ~default:Throttle_on;
    j_t = r.r_t.(i);
    j_a = r.r_a.(i);
    j_b = r.r_b.(i);
    j_c = r.r_c.(i);
    j_dom = r.r_dom;
  }

let by_time a b = compare a.j_t b.j_t

let events () =
  Mutex.lock rings_mu;
  let rs = !rings in
  Mutex.unlock rings_mu;
  let acc = ref [] in
  List.iter
    (fun r ->
      let total = Atomic.get r.r_idx in
      let n = Stdlib.min total cap in
      for k = total - n to total - 1 do
        acc := event_at r (k land mask) :: !acc
      done)
    rs;
  List.sort by_time !acc

let drain () =
  Mutex.lock rings_mu;
  let rs = !rings in
  let acc = ref [] in
  List.iter
    (fun r ->
      let total = Atomic.get r.r_idx in
      let start = Stdlib.max r.r_cur (total - cap) in
      for k = start to total - 1 do
        acc := event_at r (k land mask) :: !acc
      done;
      r.r_cur <- total)
    rs;
  Mutex.unlock rings_mu;
  List.sort by_time !acc

let dropped () =
  Mutex.lock rings_mu;
  let rs = !rings in
  Mutex.unlock rings_mu;
  List.fold_left
    (fun acc r -> acc + Stdlib.max 0 (Atomic.get r.r_idx - cap))
    0 rs

let clear () =
  Mutex.lock rings_mu;
  List.iter
    (fun r ->
      Atomic.set r.r_idx 0;
      r.r_cur <- 0)
    !rings;
  Mutex.unlock rings_mu
