lib/history/txn.mli: Format Op
