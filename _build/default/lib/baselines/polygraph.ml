type edge_kind = Dep | Anti

type choice = (edge_kind * int * int) list

type constr = {
  key : Op.key;
  w1 : int;
  w2 : int;
  if_w1_first : choice;
  if_w2_first : choice;
}

type t = {
  idx : Index.t;
  known : (edge_kind * int * int) list;
  constraints : constr list;
  construct_s : float;
}

type failure = Screen of Int_check.violation | Unresolved of string

let num_constraints t = List.length t.constraints

let build h =
  let t0 = Unix.gettimeofday () in
  let idx = Index.build h in
  match Int_check.check idx with
  | Error v -> Error (Screen v)
  | Ok () -> (
      let known = ref [] in
      List.iter
        (fun (a, b) ->
          known := (Dep, Index.vertex idx a, Index.vertex idx b) :: !known)
        (History.so_pairs h);
      (* WR edges + reader lists per (writer vertex, key). *)
      let readers : (int * Op.key, int list ref) Hashtbl.t =
        Hashtbl.create 1024
      in
      let writers_of_key : (Op.key, int list ref) Hashtbl.t =
        Hashtbl.create 64
      in
      let error = ref None in
      Array.iteri
        (fun sv (s : Txn.t) ->
          List.iter
            (fun (k, _v) ->
              match Hashtbl.find_opt writers_of_key k with
              | Some r -> r := sv :: !r
              | None -> Hashtbl.replace writers_of_key k (ref [ sv ]))
            (Txn.final_writes s);
          List.iter
            (fun (k, v) ->
              match Index.writer_of idx k v with
              | Index.Final w when w <> s.id ->
                  let wv = Index.vertex idx w in
                  known := (Dep, wv, sv) :: !known;
                  let r =
                    match Hashtbl.find_opt readers (wv, k) with
                    | Some r -> r
                    | None ->
                        let r = ref [] in
                        Hashtbl.replace readers (wv, k) r;
                        r
                  in
                  r := sv :: !r
              | Index.Final _ | Index.Intermediate _ | Index.Aborted _
              | Index.Nobody ->
                  if !error = None then
                    error :=
                      Some
                        (Printf.sprintf
                           "read of %d on x%d in T%d has no committed final \
                            writer"
                           v k s.id))
            (Txn.external_reads s))
        idx.committed;
      match !error with
      | Some msg -> Error (Unresolved msg)
      | None ->
          let readers_of wv k =
            match Hashtbl.find_opt readers (wv, k) with
            | Some r -> !r
            | None -> []
          in
          (* One constraint per unordered pair of writers of an object. *)
          let constraints = ref [] in
          Hashtbl.iter
            (fun k ws ->
              let ws = Array.of_list !ws in
              for i = 0 to Array.length ws - 1 do
                for j = i + 1 to Array.length ws - 1 do
                  let w1 = ws.(i) and w2 = ws.(j) in
                  let side first second =
                    (Dep, first, second)
                    :: List.filter_map
                         (fun r ->
                           if r <> second then Some (Anti, r, second) else None)
                         (readers_of first k)
                  in
                  constraints :=
                    {
                      key = k;
                      w1;
                      w2;
                      if_w1_first = side w1 w2;
                      if_w2_first = side w2 w1;
                    }
                    :: !constraints
                done
              done)
            writers_of_key;
          Ok
            {
              idx;
              known = List.rev !known;
              constraints = !constraints;
              construct_s = Unix.gettimeofday () -. t0;
            })
