type params = {
  num_sessions : int;
  num_txns : int;
  num_keys : int;
  ops_per_txn : int;
  dist : Distribution.kind;
  seed : int;
}

let default =
  {
    num_sessions = 10;
    num_txns = 1000;
    num_keys = 100;
    ops_per_txn = 10;
    dist = Distribution.Uniform;
    seed = 42;
  }

type flavour = Read_only | Write_only | Rmw

let sample_flavour rng =
  let x = Rng.int rng 100 in
  if x < 20 then Read_only else if x < 60 then Write_only else Rmw

let make_txn p dist rng =
  let open Spec in
  match sample_flavour rng with
  | Read_only ->
      List.init p.ops_per_txn (fun _ -> Pread (Distribution.sample dist rng))
  | Write_only ->
      List.init p.ops_per_txn (fun _ -> Pwrite (Distribution.sample dist rng))
  | Rmw ->
      (* Pairs R(k); W(k); odd op budgets end with a single read. *)
      let rec build n acc =
        if n >= p.ops_per_txn then List.rev acc
        else if n = p.ops_per_txn - 1 then
          List.rev (Pread (Distribution.sample dist rng) :: acc)
        else
          let k = Distribution.sample dist rng in
          build (n + 2) (Pwrite k :: Pread k :: acc)
      in
      build 0 []

let generate p =
  if p.num_sessions <= 0 then invalid_arg "Gt_gen.generate: no sessions";
  if p.ops_per_txn <= 0 then invalid_arg "Gt_gen.generate: empty transactions";
  let rng = Rng.create p.seed in
  let dist = Distribution.make p.dist ~n:p.num_keys in
  let sessions = Array.make p.num_sessions [] in
  for i = 0 to p.num_txns - 1 do
    let s = i mod p.num_sessions in
    sessions.(s) <- make_txn p dist rng :: sessions.(s)
  done;
  {
    Spec.name =
      Printf.sprintf "gt-%s-s%d-t%d-k%d-o%d"
        (Distribution.kind_name p.dist)
        p.num_sessions p.num_txns p.num_keys p.ops_per_txn;
    num_keys = p.num_keys;
    sessions = Array.map List.rev sessions;
  }
