lib/history/history.mli: Format Txn
