lib/common/distribution.mli: Rng
