(* Tests for Lwt histories, the VL-LWT checker (paper Algorithm 2) and the
   synthetic LWT generator. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let ev id session op start finish = { Lwt.id; session; op; start; finish }
let insert k v = Lwt.Insert { key = k; value = v }
let rw k e n = Lwt.Rw { key = k; expected = e; new_value = n }
let rd k v = Lwt.Read { key = k; value = v }

let make events = Lwt.make ~num_keys:2 ~num_sessions:4 events

let ok h = Lwt_checker.check h = Ok ()

(* Figure 4a: a linearizable history of R&W operations. *)
let test_fig4a_linearizable () =
  let h =
    make
      [
        ev 0 1 (insert 0 100) 0 1;
        ev 1 1 (rw 0 100 101) 2 6;
        ev 2 2 (rw 0 101 102) 5 9;
      ]
  in
  checkb "linearizable" true (ok h)

(* Figure 4b: O1:R&W(x,0,1) starts after O2:R&W(x,1,2) finishes. *)
let test_fig4b_not_linearizable () =
  let h =
    make
      [
        ev 0 1 (insert 0 100) 0 1;
        ev 1 1 (rw 0 100 101) 10 12;  (* consumes 100, but starts late *)
        ev 2 2 (rw 0 101 102) 3 5;  (* finished before its predecessor began *)
      ]
  in
  match Lwt_checker.check h with
  | Error (Lwt_checker.Real_time_violation _) -> ()
  | Error r ->
      Alcotest.failf "wrong reason: %s"
        (Format.asprintf "%a" Lwt_checker.pp_reason r)
  | Ok () -> Alcotest.fail "figure 4b accepted"

let test_no_insert () =
  let h = make [ ev 0 1 (rw 0 1 2) 0 1 ] in
  checkb "no insert" true (Lwt_checker.check h = Error (Lwt_checker.No_insert 0))

let test_multiple_inserts () =
  let h = make [ ev 0 1 (insert 0 1) 0 1; ev 1 2 (insert 0 2) 2 3 ] in
  match Lwt_checker.check h with
  | Error (Lwt_checker.Multiple_inserts { count = 2; _ }) -> ()
  | _ -> Alcotest.fail "expected multiple-inserts"

let test_broken_chain () =
  (* E1 consumes a value nobody wrote. *)
  let h = make [ ev 0 1 (insert 0 1) 0 1; ev 1 1 (rw 0 99 100) 2 3 ] in
  match Lwt_checker.check h with
  | Error (Lwt_checker.No_successor { remaining = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected broken chain"

let test_duplicate_cas () =
  let h =
    make
      [
        ev 0 1 (insert 0 1) 0 1;
        ev 1 1 (rw 0 1 2) 2 3;
        ev 2 2 (rw 0 1 3) 2 4;
      ]
  in
  match Lwt_checker.check h with
  | Error (Lwt_checker.Duplicate_successor _) -> ()
  | _ -> Alcotest.fail "expected duplicate successor"

let test_reads_ok () =
  let h =
    make
      [
        ev 0 1 (insert 0 1) 0 1;
        ev 1 1 (rw 0 1 2) 4 6;
        ev 2 2 (rd 0 1) 2 3;  (* reads first value before the CAS *)
        ev 3 3 (rd 0 2) 7 9;  (* reads second value after *)
      ]
  in
  checkb "reads fit" true (ok h)

let test_read_stale_value () =
  let h = make [ ev 0 1 (insert 0 1) 0 1; ev 1 1 (rd 0 77) 2 3 ] in
  match Lwt_checker.check h with
  | Error (Lwt_checker.Stale_read { value = 77; _ }) -> ()
  | _ -> Alcotest.fail "expected stale read"

let test_read_too_late () =
  (* Read of the overwritten value that starts after the overwriter (and
     everything else) finished cannot linearize. *)
  let h =
    make
      [
        ev 0 1 (insert 0 1) 0 1;
        ev 1 1 (rw 0 1 2) 2 3;
        ev 2 2 (rd 0 1) 10 12;
      ]
  in
  match Lwt_checker.check h with
  | Error (Lwt_checker.Real_time_violation _) -> ()
  | _ -> Alcotest.fail "expected a real-time violation"

let test_concurrent_read_of_old_value () =
  (* The read overlaps the CAS: may linearize before it. *)
  let h =
    make
      [
        ev 0 1 (insert 0 1) 0 1;
        ev 1 1 (rw 0 1 2) 4 8;
        ev 2 2 (rd 0 1) 5 9;
      ]
  in
  checkb "overlapping read ok" true (ok h)

let test_per_key_independence () =
  (* A violation on key 1 is found even when key 0 is clean. *)
  let h =
    make
      [
        ev 0 1 (insert 0 1) 0 1;
        ev 1 1 (insert 1 50) 2 3;
        ev 2 2 (rw 1 99 100) 4 5;
      ]
  in
  match Lwt_checker.check h with
  | Error (Lwt_checker.No_successor { key = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected failure on key 1"

let test_chain_extraction () =
  let h =
    make
      [
        ev 0 1 (insert 0 1) 0 1;
        ev 1 1 (rw 0 1 2) 2 3;
        ev 2 2 (rw 0 2 3) 4 5;
      ]
  in
  match Lwt_checker.chain h 0 with
  | Ok chain ->
      Alcotest.check (Alcotest.list Alcotest.int) "chain order" [ 0; 1; 2 ]
        (List.map (fun (e : Lwt.event) -> e.Lwt.id) chain)
  | Error _ -> Alcotest.fail "chain failed"

let test_empty_key_ok () =
  checkb "empty history fine" true (ok (make []))

let test_make_rejects_duplicates () =
  checkb "dup id" true
    (try
       ignore (make [ ev 0 1 (insert 0 1) 0 1; ev 0 1 (insert 1 2) 0 1 ]);
       false
     with Invalid_argument _ -> true)

let test_make_rejects_backwards_interval () =
  checkb "finish < start" true
    (try
       ignore (make [ ev 0 1 (insert 0 1) 5 2 ]);
       false
     with Invalid_argument _ -> true)

(* --- generator --- *)

let test_gen_valid_by_construction () =
  List.iter
    (fun pct ->
      let h =
        Lwt_gen.generate
          { Lwt_gen.default with concurrent_pct = pct; txns_per_session = 60 }
      in
      checkb (Printf.sprintf "pct %.1f valid" pct) true (ok h))
    [ 0.0; 0.25; 0.5; 1.0 ]

let test_gen_event_count () =
  let p = { Lwt_gen.default with num_sessions = 4; txns_per_session = 25 } in
  let h = Lwt_gen.generate p in
  checki "4*25 events" 100 (Array.length h.Lwt.events)

let test_gen_injections_detected () =
  List.iter
    (fun (inj, name) ->
      let h =
        Lwt_gen.generate
          { Lwt_gen.default with txns_per_session = 40; inject = inj }
      in
      checkb name false (ok h))
    [
      (Lwt_gen.Rt_violation, "rt violation");
      (Lwt_gen.Phantom_write, "phantom write");
      (Lwt_gen.Split_brain, "split brain");
    ]

let test_gen_deterministic () =
  let p = { Lwt_gen.default with txns_per_session = 20 } in
  let a = Lwt_gen.generate p and b = Lwt_gen.generate p in
  checkb "same events" true (a.Lwt.events = b.Lwt.events)

(* --- agreement with Porcupine on both valid and broken histories --- *)

let test_agree_with_porcupine () =
  List.iter
    (fun inj ->
      List.iter
        (fun seed ->
          let h =
            Lwt_gen.generate
              {
                Lwt_gen.default with
                num_sessions = 6;
                txns_per_session = 30;
                seed;
                inject = inj;
              }
          in
          let vl = ok h in
          let porc = (Porcupine.check h).Porcupine.linearizable in
          checkb (Printf.sprintf "seed %d" seed) true (vl = porc))
        [ 1; 2; 3 ])
    [ Lwt_gen.No_injection; Lwt_gen.Rt_violation; Lwt_gen.Phantom_write ]

let suite =
  [
    ("figure 4a linearizable", `Quick, test_fig4a_linearizable);
    ("figure 4b not linearizable", `Quick, test_fig4b_not_linearizable);
    ("no insert", `Quick, test_no_insert);
    ("multiple inserts", `Quick, test_multiple_inserts);
    ("broken chain", `Quick, test_broken_chain);
    ("duplicate CAS", `Quick, test_duplicate_cas);
    ("plain reads fit the chain", `Quick, test_reads_ok);
    ("stale read detected", `Quick, test_read_stale_value);
    ("read placed too late", `Quick, test_read_too_late);
    ("concurrent read of old value", `Quick, test_concurrent_read_of_old_value);
    ("per-key independence", `Quick, test_per_key_independence);
    ("chain extraction", `Quick, test_chain_extraction);
    ("empty history", `Quick, test_empty_key_ok);
    ("make rejects duplicate ids", `Quick, test_make_rejects_duplicates);
    ("make rejects backwards intervals", `Quick, test_make_rejects_backwards_interval);
    ("generator produces valid histories", `Quick, test_gen_valid_by_construction);
    ("generator event count", `Quick, test_gen_event_count);
    ("generator injections detected", `Quick, test_gen_injections_detected);
    ("generator deterministic", `Quick, test_gen_deterministic);
    ("VL-LWT agrees with Porcupine", `Quick, test_agree_with_porcupine);
  ]
