(** Cycle detection with witness extraction.

    The checkers report isolation violations as concrete dependency cycles
    (paper Step 4 of Figure 2), so beyond a boolean answer we extract the
    edge sequence of some cycle.

    The DFS kernel runs over the frozen {!Csr} representation with flat
    int-array state — zero allocation per vertex/edge visit.  The
    [Digraph] entry points freeze a snapshot first; callers that already
    hold a [Csr.t] (e.g. {!Deps.freeze}) use the [_csr] variants
    directly. *)

val find : 'lab Digraph.t -> (int * 'lab * int) list option
(** [find g] is [None] if [g] is acyclic, otherwise [Some edges] where
    [edges = [(v0,l0,v1); (v1,l1,v2); ...; (vk,lk,v0)]] is a simple cycle.
    Iterative DFS over a CSR snapshot; O(V + E). *)

val is_acyclic : 'lab Digraph.t -> bool

val find_csr : 'lab Csr.t -> (int * 'lab * int) list option
(** {!find} over an already-frozen graph: no conversion, no per-visit
    allocation (only the O(V) scratch arrays and the witness). *)

val is_acyclic_csr : 'lab Csr.t -> bool

val shortest_through : 'lab Digraph.t -> int -> (int * 'lab * int) list option
(** [shortest_through g v] is a shortest cycle passing through [v]
    (BFS from [v] back to [v]), used to produce compact counterexamples.
    Iterates successors in place ({!Digraph.iter_succ}) — no per-visit
    list materialization. *)

val shortest_through_csr : 'lab Csr.t -> int -> (int * 'lab * int) list option
(** {!shortest_through} over an already-frozen graph. *)
