test/test_oracle.ml: Alcotest Anomaly Builder Checker Db Deps Fault Format Hashtbl History Isolation List Mt_gen Oracle Result Scheduler Txn
