lib/core/checker.mli: Deps Divergence Format History Int_check Txn
