(** Reachability queries, used by the Cobra-style constraint pruning
    (decide a polygraph constraint when known edges already order the two
    writes) and by counterexample minimization. *)

val reachable : _ Digraph.t -> int -> int -> bool
(** [reachable g u v]: is there a path [u ->* v]?  BFS, O(V + E). *)

val from : _ Digraph.t -> int -> bool array
(** Characteristic vector of vertices reachable from the source
    (the source itself is reachable). *)

val closure_matrix : _ Digraph.t -> Bytes.t array
(** Dense transitive-closure bitmap: bit [v] of row [u] iff [u ->* v]
    ([u ->* u] always set).  O(V·E / 8) space-efficient rows; intended for
    graphs up to a few thousand vertices (polygraph pruning). *)

val bit : Bytes.t -> int -> bool
(** Test bit [v] in a closure row. *)
