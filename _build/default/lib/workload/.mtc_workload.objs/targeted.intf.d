lib/workload/targeted.mli: Spec
