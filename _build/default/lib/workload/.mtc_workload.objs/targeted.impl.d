lib/workload/targeted.ml: Array Distribution List Mt_gen Printf Rng Spec Stdlib
