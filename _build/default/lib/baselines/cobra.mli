(** The Cobra baseline (Tan et al., OSDI'20): serializability checking of
    general histories via polygraph construction, constraint pruning, and
    SAT-modulo-acyclicity solving — our from-scratch reproduction of the
    pipeline the paper compares MTC-SER against (Figures 7 and 10).

    Sound and complete for histories with unique values: the history is
    serializable iff some choice per remaining constraint keeps the graph
    acyclic. *)

type stats = {
  constraints_total : int;
  constraints_pruned : int;
  construct_s : float;
  prune_s : float;
  encode_s : float;
  solve_s : float;
  sat_decisions : int;
  sat_conflicts : int;
}

type result = { serializable : bool; reason : string; stats : stats }

val check : History.t -> result

val total_s : stats -> float
val nonsolver_s : stats -> float
(** construction + pruning + encoding: the components the paper observes
    to dominate Cobra's runtime (Section V-D). *)
