lib/baselines/prune.mli: Polygraph
