(* Service metrics: process-wide counters and a log-bucketed latency
   histogram for the per-feed processing time.  Everything is guarded by
   one mutex — updates are a handful of int stores, far off any hot path
   compared to the socket I/O around them. *)

module Histogram = struct
  (* Bucket [i] counts samples whose value v (in nanoseconds) satisfies
     2^i <= v < 2^(i+1); bucket 0 also takes v < 1.  63 buckets cover
     the whole int range, so observe never drops a sample. *)
  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable max : int;
  }

  let create () = { buckets = Array.make 63 0; count = 0; sum = 0.0; max = 0 }

  let bucket_of v =
    let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
    if v <= 0 then 0 else go 0 v

  let observe t v =
    let b = bucket_of v in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. float_of_int v;
    if v > t.max then t.max <- v

  (* Upper edge of the bucket holding the p-th percentile sample — an
     approximation within a factor of 2, which is all a service health
     endpoint needs. *)
  let percentile t p =
    if t.count = 0 then 0
    else begin
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int t.count))
        |> Stdlib.max 1
      in
      let acc = ref 0 and found = ref (-1) in
      (try
         Array.iteri
           (fun i n ->
             acc := !acc + n;
             if !acc >= rank then begin
               found := i;
               raise Exit
             end)
           t.buckets
       with Exit -> ());
      if !found < 0 then t.max
      else Stdlib.min t.max ((1 lsl (!found + 1)) - 1)
    end

  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
end

type t = {
  mu : Mutex.t;
  created_at : float;
  mutable connections : int;
  mutable sessions_opened : int;
  mutable sessions_closed : int;
  mutable txns_fed : int;
  mutable syncs : int;
  mutable violations : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable throttles : int;
  mutable protocol_errors : int;
  mutable queue_high_water : int;
  feed_ns : Histogram.t;
  feed_words : Histogram.t;  (* minor-heap words allocated per feed *)
}

let create () =
  {
    mu = Mutex.create ();
    created_at = Unix.gettimeofday ();
    connections = 0;
    sessions_opened = 0;
    sessions_closed = 0;
    txns_fed = 0;
    syncs = 0;
    violations = 0;
    frames_in = 0;
    frames_out = 0;
    throttles = 0;
    protocol_errors = 0;
    queue_high_water = 0;
    feed_ns = Histogram.create ();
    feed_words = Histogram.create ();
  }

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let connection t = with_mu t (fun () -> t.connections <- t.connections + 1)

let session_opened t =
  with_mu t (fun () -> t.sessions_opened <- t.sessions_opened + 1)

let session_closed t =
  with_mu t (fun () -> t.sessions_closed <- t.sessions_closed + 1)

let frame_in t = with_mu t (fun () -> t.frames_in <- t.frames_in + 1)
let frame_out t = with_mu t (fun () -> t.frames_out <- t.frames_out + 1)
let sync t = with_mu t (fun () -> t.syncs <- t.syncs + 1)
let violation t = with_mu t (fun () -> t.violations <- t.violations + 1)
let throttle t = with_mu t (fun () -> t.throttles <- t.throttles + 1)

let protocol_error t =
  with_mu t (fun () -> t.protocol_errors <- t.protocol_errors + 1)

let feed t ~ns ~words =
  with_mu t (fun () ->
      t.txns_fed <- t.txns_fed + 1;
      Histogram.observe t.feed_ns ns;
      Histogram.observe t.feed_words words)

let queue_depth t depth =
  with_mu t (fun () ->
      if depth > t.queue_high_water then t.queue_high_water <- depth)

let txns_fed t = with_mu t (fun () -> t.txns_fed)
let violations t = with_mu t (fun () -> t.violations)
let throttles t = with_mu t (fun () -> t.throttles)
let sessions_opened t = with_mu t (fun () -> t.sessions_opened)
let queue_high_water t = with_mu t (fun () -> t.queue_high_water)
let feed_p50_ns t = with_mu t (fun () -> Histogram.percentile t.feed_ns 50.0)
let feed_p99_ns t = with_mu t (fun () -> Histogram.percentile t.feed_ns 99.0)

let feed_words_mean t = with_mu t (fun () -> Histogram.mean t.feed_words)

let feed_words_p50 t =
  with_mu t (fun () -> Histogram.percentile t.feed_words 50.0)

let feed_words_p99 t =
  with_mu t (fun () -> Histogram.percentile t.feed_words 99.0)

let to_json t =
  with_mu t (fun () ->
      Printf.sprintf
        "{\"uptime_s\":%.3f,\"connections\":%d,\"sessions_opened\":%d,\
         \"sessions_closed\":%d,\"txns_fed\":%d,\"syncs\":%d,\
         \"violations\":%d,\"frames_in\":%d,\"frames_out\":%d,\
         \"throttles\":%d,\"protocol_errors\":%d,\"queue_high_water\":%d,\
         \"feed_ns\":{\"count\":%d,\"mean\":%.0f,\"p50\":%d,\"p99\":%d,\
         \"max\":%d},\
         \"feed_words\":{\"count\":%d,\"mean\":%.0f,\"p50\":%d,\"p99\":%d,\
         \"max\":%d}}"
        (Unix.gettimeofday () -. t.created_at)
        t.connections t.sessions_opened t.sessions_closed t.txns_fed t.syncs
        t.violations t.frames_in t.frames_out t.throttles t.protocol_errors
        t.queue_high_water t.feed_ns.Histogram.count
        (Histogram.mean t.feed_ns)
        (Histogram.percentile t.feed_ns 50.0)
        (Histogram.percentile t.feed_ns 99.0)
        t.feed_ns.Histogram.max t.feed_words.Histogram.count
        (Histogram.mean t.feed_words)
        (Histogram.percentile t.feed_words 50.0)
        (Histogram.percentile t.feed_words 99.0)
        t.feed_words.Histogram.max)

(* The process-wide instance `mtc serve` reports from; embedders can
   create their own. *)
let global = create ()
