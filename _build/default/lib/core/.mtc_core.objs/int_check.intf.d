lib/core/int_check.mli: Format Index Op Txn
