type kind =
  | Thin_air_read
  | Aborted_read of Txn.id
  | Future_read
  | Not_my_last_write
  | Not_my_own_write
  | Intermediate_read of Txn.id
  | Non_repeatable_reads

type violation = { txn : Txn.id; op_index : int; kind : kind }

let kind_name = function
  | Thin_air_read -> "ThinAirRead"
  | Aborted_read _ -> "AbortedRead"
  | Future_read -> "FutureRead"
  | Not_my_last_write -> "NotMyLastWrite"
  | Not_my_own_write -> "NotMyOwnWrite"
  | Intermediate_read _ -> "IntermediateRead"
  | Non_repeatable_reads -> "NonRepeatableReads"

let pp_violation ppf { txn; op_index; kind } =
  Format.fprintf ppf "%s at T%d op#%d" (kind_name kind) txn op_index;
  match kind with
  | Aborted_read w -> Format.fprintf ppf " (writer T%d, aborted)" w
  | Intermediate_read w -> Format.fprintf ppf " (intermediate write of T%d)" w
  | Thin_air_read | Future_read | Not_my_last_write | Not_my_own_write
  | Non_repeatable_reads ->
      ()

type last_access = Last_write of Op.value | Last_read of Op.value

(* Classify a read that disagrees with the in-transaction state.  [later]
   tells whether the observed value is produced by a write of the same
   transaction occurring after the read. *)
let classify_internal ~prior ~observed_is_earlier_own_write ~observed_is_later_own_write
    =
  if observed_is_later_own_write then Future_read
  else
    match prior with
    | Last_write _ ->
        if observed_is_earlier_own_write then Not_my_last_write
        else Not_my_own_write
    | Last_read _ -> Non_repeatable_reads

let check_txn_with ~resolve (t : Txn.t) =
  let ops = t.ops in
  let n = Array.length ops in
  let violations = ref [] in
  (* Mini-transactions have <= 4 ops: linear rescans of the op array
     replace the per-transaction hashtables, so the screen allocates
     nothing on the happy path. *)
  (* Position of the transaction's first own write of (k, v), or -1. *)
  let own_write_pos k v =
    let rec go j =
      if j >= n then -1
      else
        match ops.(j) with
        | Op.Write (k', v') when k' = k && v' = v -> j
        | Op.Write _ | Op.Read _ -> go (j + 1)
    in
    go 0
  in
  (* Last in-transaction access to [k] strictly before position [i]. *)
  let rec last_access k j =
    if j < 0 then None
    else
      match ops.(j) with
      | Op.Write (k', v') when k' = k -> Some (Last_write v')
      | Op.Read (k', v') when k' = k -> Some (Last_read v')
      | Op.Write _ | Op.Read _ -> last_access k (j - 1)
  in
  Array.iteri
    (fun i op ->
      match op with
      | Op.Write _ -> ()
      | Op.Read (k, v) -> (
          let record kind =
            violations := { txn = t.id; op_index = i; kind } :: !violations
          in
          match last_access k (i - 1) with
          | Some (Last_write v' | Last_read v') when v' = v -> ()
          | Some prior ->
              let p = own_write_pos k v in
              record
                (classify_internal ~prior
                   ~observed_is_earlier_own_write:(p >= 0 && p < i)
                   ~observed_is_later_own_write:(p > i))
          | None -> (
              (* External read: resolve the writer via unique values.
                 [resolve] receives the op index so the timestamp screen
                 can cache its prediction for the dependency builder. *)
              match resolve i k v with
              | Index.Final w when w <> t.id -> ()
              | Index.Final _ ->
                  (* Our own final write, read before it happened. *)
                  record Future_read
              | Index.Intermediate w ->
                  if w = t.id then record Future_read
                  else record (Intermediate_read w)
              | Index.Aborted w -> record (Aborted_read w)
              | Index.Nobody -> record Thin_air_read)))
    ops;
  List.rev !violations

let check_txn (idx : Index.t) t =
  check_txn_with ~resolve:(fun _ k v -> Index.writer_of idx k v) t

let check_all (idx : Index.t) =
  Array.fold_left
    (fun acc t -> acc @ check_txn idx t)
    [] idx.committed

let check ?pool idx =
  (* Vertex slices screen independently; each reports its first hit and
     the lowest committed-array position wins, which is exactly the
     sequential first-in-scan-order violation. *)
  let slices =
    Pool.map_slices pool ~n:(Array.length idx.Index.committed) (fun lo hi ->
        let rec go i =
          if i >= hi then None
          else
            match check_txn idx idx.Index.committed.(i) with
            | v :: _ -> Some (i, v)
            | [] -> go (i + 1)
        in
        go lo)
  in
  let best =
    Array.fold_left
      (fun acc hit ->
        match (acc, hit) with
        | None, hit -> hit
        | Some _, None -> acc
        | Some (i, _), Some (j, _) -> if j < i then hit else acc)
      None slices
  in
  match best with None -> Ok () | Some (_, v) -> Error v

(* Timestamp-assisted screen (Vbox mode).  External reads are judged by
   the predicted chain slot instead of the value tables: [Trust] takes
   the prediction as the writer outright; [Verify] compares the slot's
   value with the value read and defers every disagreement to a serial
   judgement pass that resolves through the (lazily built) value tables
   and classifies exactly like the [Ignore] screen — so verdicts stay
   identical while agreement (the common case) never touches a table. *)

(* Position of the first access to [k] — for a deferred read this is the
   read itself, since externals only arise on a key's first access. *)
let first_access_pos (t : Txn.t) k =
  let ops = t.ops in
  let rec go j =
    match ops.(j) with
    | Op.Read (k', _) | Op.Write (k', _) -> if k' = k then j else go (j + 1)
  in
  go 0

let check_ts ?pool (ts : Ts.t) =
  let idx = ts.Ts.idx in
  let committed = idx.Index.committed in
  let trust = ts.Ts.mode = Ts.Trust in
  let num_keys = idx.Index.history.History.num_keys in
  let slices =
    Pool.map_slices pool ~n:(Array.length committed) (fun lo hi ->
        let deferred = Int_vec.create 16 in
        let memo = Array.make num_keys (-1) in
        let fast = ref 0 in
        let rec go i =
          if i >= hi then None
          else begin
            let t = committed.(i) in
            let resolve op k v =
              let p = Ts.predict_memo ts memo k ~start_ts:t.Txn.start_ts in
              if trust || Ts.slot_value ts p = v then begin
                incr fast;
                Ts.cache_slot ts ~sv:i ~op p;
                Index.Final (Ts.slot_writer ts p)
              end
              else begin
                (* Certification mismatch: defer judgement.  Any id
                   different from [t.id] keeps the screen quiet here;
                   the serial merge re-resolves and classifies. *)
                Int_vec.push deferred i;
                Int_vec.push deferred k;
                Int_vec.push deferred v;
                Index.Final (-1)
              end
            in
            match check_txn_with ~resolve t with
            | v :: _ -> Some (i, v)
            | [] -> go (i + 1)
          end
        in
        let hit = go lo in
        (hit, deferred, !fast))
  in
  (* Serial merge.  Candidates are ordered by (committed position, op
     index); immediate hits and deferred judgements are min-merged so
     the winner is the sequential [Ignore] screen's first violation. *)
  let best = ref None in
  let consider i op v =
    match !best with
    | Some (bi, bo, _) when bi < i || (bi = i && bo <= op) -> ()
    | Some _ | None -> best := Some (i, op, v)
  in
  Array.iter
    (fun (hit, _, fast) ->
      ts.Ts.fast_reads <- ts.Ts.fast_reads + fast;
      match hit with
      | Some (i, v) -> consider i v.op_index v
      | None -> ())
    slices;
  let commit_of_writer = function
    | Index.Final w | Index.Intermediate w ->
        (Index.txn_of_vertex idx (Index.vertex idx w)).Txn.commit_ts
    | Index.Aborted _ | Index.Nobody -> min_int
  in
  (* Judge ALL deferred reads (no early stop): mismatch accounting must
     be complete whenever the screen passes, and when it fails the
     min-merge still picks the right winner. *)
  Array.iter
    (fun ((_ : (int * violation) option), deferred, (_ : int)) ->
      let len = Int_vec.length deferred in
      let j = ref 0 in
      while !j < len do
        let i = Int_vec.get deferred !j in
        let k = Int_vec.get deferred (!j + 1) in
        let v = Int_vec.get deferred (!j + 2) in
        j := !j + 3;
        let t = committed.(i) in
        Ts.mark_slow ts k;
        ts.Ts.mismatched_reads <- ts.Ts.mismatched_reads + 1;
        let actual = Index.writer_of idx k v in
        let p = Ts.predict ts k ~start_ts:t.Txn.start_ts in
        Ts.add_diag ts
          {
            Ts.d_key = k;
            d_value = v;
            d_reader = t.Txn.id;
            d_reader_start = t.Txn.start_ts;
            d_predicted = Ts.slot_writer ts p;
            d_predicted_commit = Ts.slot_commit ts p;
            d_actual = actual;
            d_actual_commit = commit_of_writer actual;
          };
        let kind =
          match actual with
          | Index.Final w when w <> t.Txn.id -> None
          | Index.Final _ -> Some Future_read
          | Index.Intermediate w ->
              if w = t.Txn.id then Some Future_read
              else Some (Intermediate_read w)
          | Index.Aborted w -> Some (Aborted_read w)
          | Index.Nobody -> Some Thin_air_read
        in
        match kind with
        | None -> ()
        | Some kind ->
            let op = first_access_pos t k in
            consider i op { txn = t.Txn.id; op_index = op; kind }
      done)
    slices;
  match !best with None -> Ok () | Some (_, _, v) -> Error v
