(** Readiness multiplexer for the service front end: epoll(7) on Linux,
    a [Unix.select] fallback elsewhere.

    Registrations are keyed by a caller-chosen {e token} ([>= 0]); a
    {!wait} reports ready tokens, not fds — with epoll the token rides
    in [epoll_data], so the hot path does no per-event lookup.

    Threading: one thread (the loop thread) owns
    {!add}/{!modify}/{!remove}/{!wait}; {!wakeup} may be called from any
    thread and makes a blocked {!wait} return immediately (self-pipe). *)

type t

val create : unit -> t

val backend_name : t -> string
(** ["epoll"] or ["select"]. *)

val add : t -> Unix.file_descr -> token:int -> read:bool -> write:bool -> unit
(** Register [fd] under [token].
    @raise Invalid_argument on a negative token (reserved). *)

val modify :
  t -> Unix.file_descr -> token:int -> read:bool -> write:bool -> unit
(** Change the interest set of a registered fd. *)

val remove : t -> Unix.file_descr -> token:int -> unit
(** Deregister; safe to call with an already-closed fd. *)

val fd_count : t -> int
(** Currently registered fds (excluding the internal self-pipe). *)

val wait :
  t ->
  timeout_ms:int ->
  handle:(token:int -> readable:bool -> writable:bool -> unit) ->
  int
(** Block up to [timeout_ms] (-1 = forever with epoll), invoke [handle]
    per ready registration, return how many were delivered (0 on
    timeout, signal, or a pure wakeup). *)

val wakeup : t -> unit
(** Thread-safe: make a concurrent or subsequent {!wait} return
    immediately. *)

val close : t -> unit
(** Release the backend and self-pipe fds.  Idempotent. *)
