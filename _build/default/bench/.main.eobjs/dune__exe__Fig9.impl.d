bench/fig9.ml: Bench_util List Lwt_checker Lwt_gen Option Porcupine Printf
