lib/db/locking.ml: Array Hashtbl List Op Txn
