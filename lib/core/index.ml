type t = {
  history : History.t;
  committed : Txn.t array;
  vertex_of_txn : int array;
  writers : Flat_index.Writers.t array;
}

(* Writer tables are striped by key so registration can run one task per
   stripe with no shared mutable state.  The stripe count is fixed (not
   the pool size): lookup routing must not depend on how the table was
   built. *)
let num_stripes = 8

let stripe_of_key k = k mod num_stripes

(* Is ops.(i) = Write (k, _) the last write to [k] in the transaction?
   Mini-transactions have <= 4 ops, so the linear rescan beats building
   the per-txn hashtables of [Txn.final_writes]. *)
let is_final_write ops i k =
  let n = Array.length ops in
  let rec later j =
    j >= n
    ||
    match ops.(j) with
    | Op.Write (k', _) when k' = k -> false
    | Op.Write _ | Op.Read _ -> later (j + 1)
  in
  later (i + 1)

(* Register every write of keys in [stripe] into that stripe's table.
   Each task rescans the whole op stream (cheap: the filter is one mod)
   but inserts only its own keys, so the tasks share nothing mutable. *)
let register_stripe (h : History.t) writers stripe =
  let w = writers.(stripe) in
  Array.iter
    (fun (t : Txn.t) ->
      match t.status with
      | Txn.Committed ->
          Array.iteri
            (fun i op ->
              match op with
              | Op.Write (k, v) when stripe_of_key k = stripe ->
                  if is_final_write t.ops i k then
                    Flat_index.Writers.set_final w k v t.id
                  else
                    (* An overwritten write whose value happens to equal
                       the final one is re-registered as intermediate; the
                       final tier shadows it in [resolve], matching the
                       seed's [Txn.intermediate_writes] semantics. *)
                    Flat_index.Writers.set_intermediate w k v t.id
              | Op.Write _ | Op.Read _ -> ())
            t.ops
      | Txn.Aborted ->
          Array.iter
            (fun op ->
              match op with
              | Op.Write (k, v) when stripe_of_key k = stripe ->
                  Flat_index.Writers.set_aborted w k v t.id
              | Op.Write _ | Op.Read _ -> ())
            t.ops)
    h.txns

let sp_writers = Obs.Trace.intern "infer/index/writers"

let build ?pool (h : History.t) =
  let n = History.num_txns h in
  let committed = Array.make (History.committed_count h) h.txns.(0) in
  let next = ref 0 in
  Array.iter
    (fun (t : Txn.t) ->
      if Txn.is_committed t then begin
        committed.(!next) <- t;
        incr next
      end)
    h.txns;
  let vertex_of_txn = Array.make n (-1) in
  Array.iteri (fun i (t : Txn.t) -> vertex_of_txn.(t.id) <- i) committed;
  let writers =
    Array.init num_stripes (fun _ ->
        Flat_index.Writers.create ~num_keys:h.num_keys
          ~expected:(Stdlib.max 16 (4 * n / num_stripes)))
  in
  Pool.tasks pool
    (List.init num_stripes (fun stripe () ->
         Obs.Trace.with_span sp_writers (fun () ->
             register_stripe h writers stripe)));
  { history = h; committed; vertex_of_txn; writers }

let num_vertices t = Array.length t.committed

let txn_of_vertex t v = t.committed.(v)

let vertex t id =
  let v = t.vertex_of_txn.(id) in
  if v < 0 then invalid_arg (Printf.sprintf "Index.vertex: T%d is aborted" id);
  v

type writer = Flat_index.Writers.who =
  | Final of Txn.id
  | Intermediate of Txn.id
  | Aborted of Txn.id
  | Nobody

let writer_of t k v =
  Flat_index.Writers.resolve t.writers.(stripe_of_key k) k v
