(* Iterative three-colour DFS over the frozen CSR representation
   (histories can have hundreds of thousands of transactions, so no
   native recursion).  All per-visit state lives in flat int arrays —
   the vertex stack, a per-vertex edge cursor into the CSR block — so
   the traversal allocates nothing per visit; only the O(V) scratch
   arrays up front and the witness on a hit.  When a back edge
   (u -> v with v grey) is found, the grey path is exactly the explicit
   stack, and the edge that discovered each stack entry is the
   predecessor's cursor minus one. *)

let white = '\000'
let grey = '\001'
let black = '\002'

exception Found_at of int (* stack depth of the back edge's source *)

let find_csr (type lab) (c : lab Csr.t) =
  let n = Csr.n c in
  let offsets = c.Csr.offsets and targets = c.Csr.targets in
  let colour = Bytes.make n white in
  let stack = Array.make (Stdlib.max n 1) 0 in
  let cursor = Array.make (Stdlib.max n 1) 0 in
  (* cursor.(v) is the next edge index (into [targets]) to scan at [v];
     only meaningful while [v] is grey. *)
  let closing = ref (-1) in
  let visit root =
    let sp = ref 0 in
    let push v =
      stack.(!sp) <- v;
      incr sp;
      Bytes.set colour v grey;
      cursor.(v) <- offsets.(v)
    in
    push root;
    while !sp > 0 do
      let u = stack.(!sp - 1) in
      let i = cursor.(u) in
      if i >= offsets.(u + 1) then begin
        Bytes.set colour u black;
        decr sp
      end
      else begin
        cursor.(u) <- i + 1;
        let v = targets.(i) in
        match Bytes.get colour v with
        | '\002' (* black *) -> ()
        | '\001' (* grey *) ->
            closing := i;
            raise (Found_at !sp)
        | _ (* white *) -> push v
      end
    done
  in
  let build_cycle depth =
    (* stack.(0 .. depth-1) is the grey path; the closing edge goes from
       stack.(depth-1) back to targets.(!closing).  Find where the cycle
       enters the stack and emit (source, label, target) triples. *)
    let v = targets.(!closing) in
    let entry = ref (depth - 1) in
    while stack.(!entry) <> v do
      decr entry
    done;
    let edges = ref [ (stack.(depth - 1), c.Csr.labels.(!closing), v) ] in
    for k = depth - 2 downto !entry do
      let discovering = cursor.(stack.(k)) - 1 in
      edges :=
        (stack.(k), c.Csr.labels.(discovering), targets.(discovering))
        :: !edges
    done;
    !edges
  in
  try
    for u = 0 to n - 1 do
      if Bytes.get colour u = white then visit u
    done;
    None
  with Found_at depth -> Some (build_cycle depth)

let is_acyclic_csr c = find_csr c = None

(* The list-graph entry points freeze to CSR first: one O(V + E) pass
   replaces the per-visit successor-list materialization the DFS used to
   pay, and CSR keeps insertion order, so witnesses are unchanged. *)
let find g = find_csr (Csr.of_digraph g)

let is_acyclic g = find g = None

let shortest_through_iter (type lab) ~n
    ~(iter : int -> (int -> lab -> unit) -> unit) v =
  let parent = Array.make n (-1) in
  let parent_lab : lab option array = Array.make n None in
  let visited = Array.make n false in
  let q = Queue.create () in
  let exception Found of (int * lab * int) in
  (* BFS outwards from [v]; the first edge returning to [v] closes a
     shortest cycle through it. *)
  let relax u =
    iter u (fun w lab ->
        if w = v then raise (Found (u, lab, v))
        else if not visited.(w) then begin
          visited.(w) <- true;
          parent.(w) <- u;
          parent_lab.(w) <- Some lab;
          Queue.add w q
        end)
  in
  try
    relax v;
    while not (Queue.is_empty q) do
      relax (Queue.pop q)
    done;
    None
  with Found ((u, _, _) as last) ->
    let rec walk acc w =
      if w = v then acc
      else
        match parent_lab.(w) with
        | Some l -> walk ((parent.(w), l, w) :: acc) parent.(w)
        | None -> acc
    in
    Some (walk [ last ] u)

let shortest_through g v =
  shortest_through_iter ~n:(Digraph.n g) ~iter:(Digraph.iter_succ g) v

let shortest_through_csr c v =
  shortest_through_iter ~n:(Csr.n c) ~iter:(Csr.iter_succ c) v
