lib/runner/elle_log.ml: Format List Op String
