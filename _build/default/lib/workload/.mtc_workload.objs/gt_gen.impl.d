lib/workload/gt_gen.ml: Array Distribution List Printf Rng Spec
