lib/core/report.mli: Anomaly Checker History
