type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 (Steele, Lea, Flood 2014): one addition and two xor-shift
   multiplies per output; passes BigCrush. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

(* OCaml native ints are 63-bit; keep 62 random bits so the result is
   always non-negative after Int64.to_int truncation. *)
let nonneg t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  nonneg t mod n

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. u *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let exponential t lambda =
  if lambda <= 0.0 then invalid_arg "Rng.exponential: lambda must be positive";
  let u = Stdlib.max 1e-12 (float t 1.0) in
  -.log u /. lambda
