lib/history/mini.ml: Array Hashtbl Op Txn
