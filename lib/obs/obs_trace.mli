(** Low-overhead span tracing into per-domain ring buffers.

    Disabled (the default) the hot path is one [Atomic.get] and a
    branch, with zero allocation — cheap enough to leave span sites in
    [Online.add_txn] and [Pearce_kelly.add_edge] permanently.

    Enabled, {!exit} appends a completed span to the calling domain's
    ring buffer: fixed capacity, overwrite-on-wrap (newest spans win,
    {!dropped} counts the rest).  Systhreads share their domain's ring;
    slots are reserved with [Atomic.fetch_and_add] so they never tear.

    Span names are interned once at module init
    ([let sp_x = Obs_trace.intern "..."]) so the hot path passes ints,
    not strings. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val clear : unit -> unit
(** Drop all buffered events and reset the dropped counter.  Call only
    when no domain is concurrently recording. *)

(** {1 Names} *)

val intern : string -> int
(** Intern a span name; returns a stable id.  Not for hot paths — call
    once per site at module init. *)

val name_of : int -> string

(** {1 Recording} *)

val enter : unit -> int
(** Timestamp to later pass to {!exit}; a sentinel when tracing is
    disabled (so a span enabled mid-flight is discarded, not recorded
    with a garbage duration). *)

val exit : int -> int -> unit
(** [exit name_id t0] records the span if tracing was on at both ends.
    Allocation-free. *)

val with_span : int -> (unit -> 'a) -> 'a
(** Closure convenience for cold call sites; re-raises, recording the
    span on the exception path too. *)

val instant : int -> unit
(** Zero-duration marker event. *)

(** {1 Draining} *)

type event = {
  ev_name : string;
  ev_t0 : int;   (** ns, monotonic origin *)
  ev_dur : int;  (** ns *)
  ev_dom : int;  (** recording domain id *)
}

val events : unit -> event list
(** Buffered events from every domain's ring, oldest first (sorted by
    [ev_t0]).  Concurrent recording may be mid-overwrite; drain after
    the traced region completes for exact results. *)

val dropped : unit -> int
(** Events lost to ring overwrite since the last {!clear}. *)
