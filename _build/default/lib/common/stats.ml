let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let sorted xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let median xs =
  if Array.length xs = 0 then invalid_arg "Stats.median: empty";
  let s = sorted xs in
  let n = Array.length s in
  if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  let s = sorted xs in
  let n = Array.length s in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  s.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let min xs = Array.fold_left Stdlib.min xs.(0) xs
let max xs = Array.fold_left Stdlib.max xs.(0) xs

type summary = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize xs =
  {
    n = Array.length xs;
    mean = mean xs;
    median = median xs;
    stddev = stddev xs;
    min = min xs;
    max = max xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f median=%.4f sd=%.4f min=%.4f max=%.4f"
    s.n s.mean s.median s.stddev s.min s.max

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let time_repeat ?(warmup = 1) ~repeat f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  Array.init repeat (fun _ -> snd (time_it f))

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).live_words
