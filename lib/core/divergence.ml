type instance = {
  key : Op.key;
  writer : Txn.id;
  reader1 : Txn.id * Op.value;
  reader2 : Txn.id * Op.value;
}

let pp_instance ppf { key; writer; reader1 = r1, v1; reader2 = r2, v2 } =
  Format.fprintf ppf
    "DIVERGENCE on x%d: T%d and T%d both read from T%d and wrote %d / %d" key
    r1 r2 writer v1 v2

(* A committed transaction S "diverges" on x if it has an external read
   R(x, v) and a final write W(x, _): it extends the version chain of the
   writer of v.  Two extenders of the same (x, v) form the pattern. *)
let scan (idx : Index.t) ~all =
  let first_extender : (Op.key * Op.value, Txn.id * Op.value) Hashtbl.t =
    Hashtbl.create 64
  in
  let found = ref [] in
  let exception Hit in
  (try
     Array.iter
       (fun (s : Txn.t) ->
         List.iter
           (fun (k, v) ->
             match Txn.write_of s k with
             | None -> ()
             | Some v_new -> (
                 match Hashtbl.find_opt first_extender (k, v) with
                 | None -> Hashtbl.replace first_extender (k, v) (s.id, v_new)
                 | Some (other, v_other) ->
                     let writer =
                       match Index.writer_of idx k v with
                       | Index.Final w -> w
                       | Index.Intermediate w | Index.Aborted w -> w
                       | Index.Nobody -> -1
                     in
                     found :=
                       {
                         key = k;
                         writer;
                         reader1 = (other, v_other);
                         reader2 = (s.id, v_new);
                       }
                       :: !found;
                     if not all then raise Hit))
           (Txn.external_reads s))
       idx.committed
   with Hit -> ());
  List.rev !found

(* Key-striped first-instance scan: a diverging pair lives entirely on
   one key, so stripes are independent; each tracks the (committed
   position, external-read rank) of its first hit and the global minimum
   reproduces the sequential scan order exactly. *)
let num_stripes = 8

let find_striped ?pool (idx : Index.t) =
  let results =
    Pool.map_slices pool ~n:num_stripes (fun lo hi ->
        let best = ref None in
        for stripe = lo to hi - 1 do
          let first_extender : (Op.key * Op.value, Txn.id * Op.value) Hashtbl.t
              =
            Hashtbl.create 64
          in
          (try
             Array.iteri
               (fun sv (s : Txn.t) ->
                 List.iteri
                   (fun ri (k, v) ->
                     if k mod num_stripes = stripe then
                       match Txn.write_of s k with
                       | None -> ()
                       | Some v_new -> (
                           match Hashtbl.find_opt first_extender (k, v) with
                           | None ->
                               Hashtbl.replace first_extender (k, v)
                                 (s.id, v_new)
                           | Some (other, v_other) ->
                               let writer =
                                 match Index.writer_of idx k v with
                                 | Index.Final w -> w
                                 | Index.Intermediate w | Index.Aborted w -> w
                                 | Index.Nobody -> -1
                               in
                               let inst =
                                 {
                                   key = k;
                                   writer;
                                   reader1 = (other, v_other);
                                   reader2 = (s.id, v_new);
                                 }
                               in
                               (match !best with
                               | Some (bsv, bri, _)
                                 when bsv < sv || (bsv = sv && bri < ri) ->
                                   ()
                               | Some _ | None -> best := Some (sv, ri, inst));
                               raise Exit))
                   (Txn.external_reads s))
               idx.committed
           with Exit -> ())
        done;
        !best)
  in
  let best =
    Array.fold_left
      (fun acc hit ->
        match (acc, hit) with
        | None, hit -> hit
        | Some _, None -> acc
        | Some (ai, ar, _), Some (bi, br, _) ->
            if bi < ai || (bi = ai && br < ar) then hit else acc)
      None results
  in
  Option.map (fun (_, _, inst) -> inst) best

let find ?pool idx =
  match pool with
  | Some _ -> find_striped ?pool idx
  | None -> ( match scan idx ~all:false with [] -> None | i :: _ -> Some i)

let find_all idx = scan idx ~all:true
