lib/core/report.ml: Anomaly Array Buffer Checker Deps Divergence Format History Int_check List Printf Txn
