lib/graph/pearce_kelly.ml: Array Hashtbl List
