#!/usr/bin/env bash
# Benchmark diff between two promoted BENCH_*.json files (JSONL, one
# experiment object per line — see Bench_util.experiment_json).
#
#   bash scripts/bench_diff.sh BENCH_PR3.json BENCH_PR4.json
#   bash scripts/bench_diff.sh --max-regress 300 BENCH_PR5.json BENCH_PR6.json
#
# Tables are matched by (experiment, section), rows by their first
# cell, and columns by header name — so a table that gains a column
# between PRs still diffs on the shared ones.  Every shared numeric
# column is reported as old -> new with a relative delta.
#
# Without --max-regress the script is advisory and ALWAYS exits 0.
# With --max-regress PCT it becomes a gate: any shared numeric cell
# that regresses by more than PCT percent — got slower for
# time/latency/memory columns, dropped for throughput/speedup columns
# ("txns/s", "speedup") — fails the run with exit 1 and a list of the
# offending rows.  PCT should be generous (hundreds) when the baseline
# was promoted on different hardware or under different load.
#
# --expect-new PAT (repeatable) marks tables or rows that are known to
# be new this PR: entries whose label contains PAT are acknowledged in
# one summary line instead of being listed as missing-baseline noise.

set -u

MAX_REGRESS=""
EXPECT_NEW=""
while [ $# -gt 0 ]; do
  case "$1" in
    --max-regress)
      MAX_REGRESS="${2:-}"
      shift 2 || { echo "bench_diff: --max-regress needs a value" >&2; exit 2; }
      ;;
    --expect-new)
      [ -n "${2:-}" ] || { echo "bench_diff: --expect-new needs a value" >&2; exit 2; }
      EXPECT_NEW="$EXPECT_NEW$2
"
      shift 2
      ;;
    *) break ;;
  esac
done

OLD="${1:-}"
NEW="${2:-}"

if [ -z "$OLD" ] || [ -z "$NEW" ]; then
  echo "usage: bench_diff.sh [--max-regress PCT] OLD.json NEW.json" >&2
  exit 0
fi
if [ ! -f "$OLD" ] || [ ! -f "$NEW" ]; then
  echo "bench_diff: missing $OLD or $NEW — nothing to compare (advisory, not failing)"
  exit 0
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "bench_diff: python3 not available — skipping (advisory, not failing)"
  exit 0
fi

MAX_REGRESS="$MAX_REGRESS" EXPECT_NEW="$EXPECT_NEW" python3 - "$OLD" "$NEW" <<'PY'
import json, os, sys

def load(path):
    tables = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                exp = json.loads(line)
            except json.JSONDecodeError:
                continue
            for t in exp.get("tables", []):
                key = (exp.get("experiment", ""), t.get("section", ""))
                header, rows = tables.setdefault(key, ([], {}))
                if not header:
                    header.extend(t.get("header", []))
                for row in t.get("rows", []):
                    if row:
                        rows[row[0]] = row
    return tables

def num(s):
    try:
        return float(s)
    except (TypeError, ValueError):
        return None

def cell(header, row, col):
    try:
        return row[header.index(col)]
    except (ValueError, IndexError):
        return None

# Columns where bigger is better; everything else numeric (times,
# latencies, words, bytes) regresses by growing.
def higher_is_better(col):
    c = col.lower()
    return "txns/s" in c or "speedup" in c or "/s" in c

def main():
    max_regress = None
    raw = os.environ.get("MAX_REGRESS", "")
    if raw:
        try:
            max_regress = float(raw)
        except ValueError:
            print(f"bench_diff: bad --max-regress value {raw!r}", file=sys.stderr)
            sys.exit(2)
    expect_new = [p for p in os.environ.get("EXPECT_NEW", "").splitlines() if p]
    old, new = load(sys.argv[1]), load(sys.argv[2])
    printed = False
    baseline_missing = []
    expected_new = []
    regressions = []

    def note_missing(label):
        (expected_new if any(p in label for p in expect_new)
         else baseline_missing).append(label)
    for key, (nheader, nrows) in new.items():
        exp, section = key
        if key not in old:
            label = f"[{exp}] {section}" if section else f"[{exp}]"
            note_missing(f"{label} (whole table)")
            continue
        oheader, orows = old[key]
        shared = [c for c in nheader[1:] if c in oheader[1:]]
        lines = []
        for name, nrow in nrows.items():
            orow = orows.get(name)
            if orow is None:
                note_missing(f"[{exp}] {name}")
                continue
            cells = []
            for col in shared:
                ov, nv = cell(oheader, orow, col), cell(nheader, nrow, col)
                a, b = num(ov), num(nv)
                if a is None or b is None or (a == 0 and b == 0):
                    continue
                delta = f"{100.0 * (b - a) / a:+.0f}%" if a != 0 else "new"
                cells.append(f"{col}: {ov} -> {nv} ({delta})")
                if max_regress is not None and a > 0:
                    change = 100.0 * (b - a) / a
                    bad = (-change if higher_is_better(col) else change)
                    if bad > max_regress:
                        regressions.append(
                            f"[{exp}] {name} {col}: {ov} -> {nv} "
                            f"({delta}, limit {max_regress:.0f}%)")
            if cells:
                lines.append(f"  {name}:  " + "  |  ".join(cells))
        if lines:
            if not printed:
                mode = ("gate" if max_regress is not None else "advisory")
                print(f"benchmark diff: {sys.argv[1]} -> {sys.argv[2]}"
                      f" ({mode})")
                printed = True
            print(f"[{exp}] {section}" if section else f"[{exp}]")
            for l in sorted(lines):
                print(l)
    if not printed:
        print("bench_diff: no comparable tables between "
              f"{sys.argv[1]} and {sys.argv[2]}")
    if expected_new:
        print(f"bench_diff: {len(expected_new)} expected-new entr(ies) "
              f"matched --expect-new (baseline starts next PR)")
    if baseline_missing:
        print(f"bench_diff: {len(baseline_missing)} row(s) have no baseline "
              f"in {sys.argv[1]} (new this PR, nothing to diff):")
        for entry in sorted(baseline_missing):
            print(f"  {entry}")
    if max_regress is not None and regressions:
        print(f"bench_diff: {len(regressions)} regression(s) beyond "
              f"{max_regress:.0f}%:", file=sys.stderr)
        for r in sorted(regressions):
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)

try:
    main()
except BrokenPipeError:
    pass
PY
exit $?
